package experiments

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"extrap/internal/core"
	"extrap/internal/metrics"
	"extrap/internal/pool"
	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/translate"
)

// BatchStats counts batched-sweep activity for observability surfaces
// (`/debug/vars` on the server). All fields are cumulative; a zero
// value is ready to use and safe for concurrent updates.
type BatchStats struct {
	// Batches is the number of batched simulation calls issued (each
	// advances up to BatchSize machine models over one shared trace).
	Batches atomic.Int64
	// CellsBatched is the number of grid cells that ran inside a batch.
	CellsBatched atomic.Int64
	// FallbackSequential is the number of cells that ran the per-cell
	// path with batching enabled, because no other cell shared their
	// measurement.
	FallbackSequential atomic.Int64
}

// BatchSnapshot is a point-in-time copy of BatchStats.
type BatchSnapshot struct {
	Batches            int64
	CellsBatched       int64
	FallbackSequential int64
}

// Snapshot returns the current counter values.
func (s *BatchStats) Snapshot() BatchSnapshot {
	return BatchSnapshot{
		Batches:            s.Batches.Load(),
		CellsBatched:       s.CellsBatched.Load(),
		FallbackSequential: s.FallbackSequential.Load(),
	}
}

// batchOptions configures runGrid's batched execution.
type batchOptions struct {
	// size is the maximum number of machine models advanced per batched
	// simulation call; ≤ 1 disables batching (pure per-cell execution).
	size int
	// stats, when non-nil, receives batch counters.
	stats *BatchStats
}

// arenaPool recycles dense simulator state (threads, processors,
// barriers, event list, message slab) across sequential grid cells, so
// the per-cell in-memory path does not reallocate ~½ MB per simulation.
// Reuse is bit-identity-safe: the arena fully reinitializes on acquire.
var arenaPool = sync.Pool{New: func() any { return sim.NewArena() }}

// simulateCell runs one in-memory simulation with pooled dense state.
func simulateCell(ctx context.Context, pt *translate.ParallelTrace, cfg sim.Config) (*sim.Result, error) {
	a := arenaPool.Get().(*sim.Arena)
	res, err := sim.SimulateArenaContext(ctx, a, pt, cfg)
	arenaPool.Put(a)
	return res, err
}

// batchGroup is the set of grid cells sharing one measurement: same
// benchmark, size, mode, and thread count — only the machine model
// differs. The group materializes its translated trace once (guarded by
// once) and every chunk simulates against the shared read-only trace.
type batchGroup struct {
	key   core.CacheKey
	cells []int // flat cell indices, in grid order

	once sync.Once
	pt   *translate.ParallelTrace
	err  error
}

// materialize decodes and translates the group's measurement exactly
// once. On an encoded cache the bytes (either XTRP format, detected by
// magic) are bulk-decoded here — batching deliberately trades the
// streaming path's bounded memory for a one-per-group materialized
// trace shared by every lane.
func (g *batchGroup) materialize(cache *core.TraceCache, measure func() (*trace.Trace, error)) (*translate.ParallelTrace, error) {
	g.once.Do(func() {
		if cache.Streams() {
			enc, err := cache.Encoded(g.key, measure)
			if err != nil {
				g.err = err
				return
			}
			tr, err := trace.ReadBinaryAny(bytes.NewReader(enc))
			if err != nil {
				g.err = err
				return
			}
			g.pt, g.err = translate.Translate(tr)
			return
		}
		g.pt, g.err = cache.Translated(g.key, measure)
	})
	return g.pt, g.err
}

// batchUnit is one schedulable work item of a batched grid: either a
// chunk of a multi-cell group (batch lanes) or a singleton fallback.
type batchUnit struct {
	group *batchGroup
	cells []int // flat indices, ≤ batch size of them
}

// runGridBatched is runGrid's batched execution: cells are grouped by
// measurement key, groups are chunked to the batch size, and chunks fan
// out across the worker pool. Each chunk advances its lanes over the
// group's shared translated trace through the batch kernel, which is
// byte-identical to per-cell simulation, so the assembled grid matches
// the sequential path exactly at any worker count and batch size.
func runGridBatched(ctx context.Context, cache *core.TraceCache, workers int, bo batchOptions, jobs []SweepJob, cells []gridCell, points [][]metrics.Point) error {
	groups := make(map[core.CacheKey]*batchGroup)
	var order []*batchGroup
	for ci, c := range cells {
		job := &jobs[c.job]
		key := cacheKey(job.Name, job.Size, job.Procs[c.pt], core.MeasureOptions{SizeMode: job.Mode})
		g, ok := groups[key]
		if !ok {
			g = &batchGroup{key: key}
			groups[key] = g
			order = append(order, g)
		}
		g.cells = append(g.cells, ci)
	}

	// Units are built in group-first-appearance order with in-group
	// chunks in grid order, so unit indexing — and therefore which error
	// the pool surfaces — is deterministic.
	var units []batchUnit
	for _, g := range order {
		if len(g.cells) == 1 {
			units = append(units, batchUnit{group: g, cells: g.cells})
			continue
		}
		for lo := 0; lo < len(g.cells); lo += bo.size {
			hi := lo + bo.size
			if hi > len(g.cells) {
				hi = len(g.cells)
			}
			units = append(units, batchUnit{group: g, cells: g.cells[lo:hi]})
		}
	}

	return pool.Run(workers, len(units), func(u int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		unit := units[u]
		g := unit.group
		job0 := &jobs[cells[unit.cells[0]].job]
		n := g.key.Threads
		measure := func() (*trace.Trace, error) {
			return core.MeasureContext(ctx, job0.Factory(n), core.MeasureOptions{SizeMode: job0.Mode})
		}

		// Singleton fallback: nothing shares this measurement, so the
		// per-cell path (streaming on an encoded cache) is strictly
		// better — batching it would materialize a trace for one lane.
		if len(g.cells) == 1 {
			if bo.stats != nil {
				bo.stats.FallbackSequential.Add(1)
			}
			return runCellSequential(ctx, cache, jobs, cells, points, unit.cells[0])
		}

		pt, err := g.materialize(cache, measure)
		if err != nil {
			return err
		}
		cfgs := make([]sim.Config, len(unit.cells))
		for i, ci := range unit.cells {
			cfgs[i] = jobs[cells[ci].job].Cfg
		}
		var results []*sim.Result
		labels := pprof.Labels(
			"batch_size", strconv.Itoa(len(cfgs)),
			"grid", g.key.Bench+"/n="+strconv.Itoa(n),
		)
		pprof.Do(ctx, labels, func(ctx context.Context) {
			results, err = sim.SimulateBatchContext(ctx, pt, cfgs)
		})
		if err != nil {
			return err
		}
		if bo.stats != nil {
			bo.stats.Batches.Add(1)
			bo.stats.CellsBatched.Add(int64(len(cfgs)))
		}
		for i, ci := range unit.cells {
			c := cells[ci]
			points[c.job][c.pt] = metrics.Point{Procs: n, Time: results[i].TotalTime}
		}
		return nil
	})
}
