package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"extrap/internal/core"
	"extrap/internal/pcxx"
)

// TestStreamingServiceMatchesInMemory: the encoded-cache Service must
// predict exactly what the in-memory Service predicts — same scalars,
// same Result — for single predictions and for sweeps at any worker
// count.
func TestStreamingServiceMatchesInMemory(t *testing.T) {
	b := mustBench(t, "grid")
	size := quickSize(b)
	ctx := context.Background()

	mem := NewService(2, 0)
	str := NewStreamingService(2, 0, 0)

	want, err := mem.Predict(ctx, b, size, 4, pcxx.ActualSize, freeCfg())
	if err != nil {
		t.Fatal(err)
	}
	got, err := str.Predict(ctx, b, size, 4, pcxx.ActualSize, freeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got.Measured1P != want.Measured1P || got.Ideal != want.Ideal {
		t.Errorf("scalars differ: streaming (%v, %v) vs in-memory (%v, %v)",
			got.Measured1P, got.Ideal, want.Measured1P, want.Ideal)
	}
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Errorf("results differ:\nstreaming: %+v\nin-memory: %+v", *got.Result, *want.Result)
	}

	// The memoized bytes serve repeat predictions without re-measuring.
	if _, err := str.Predict(ctx, b, size, 4, pcxx.ActualSize, freeCfg()); err != nil {
		t.Fatal(err)
	}
	if _, misses := str.CacheStats(); misses != 1 {
		t.Errorf("streaming service measured %d times, want 1", misses)
	}

	// Sweeps route through runGrid's streaming branch and must match the
	// in-memory grid point for point.
	sb := mustBench(t, "cyclic")
	ssize := quickSize(sb)
	job := SweepJob{
		Name:    sb.Name(),
		Size:    ssize,
		Factory: sb.Factory(ssize),
		Mode:    pcxx.ActualSize,
		Cfg:     freeCfg(),
		Procs:   []int{1, 2, 4},
	}
	wantPts, err := mem.Sweep(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	gotPts, err := str.Sweep(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPts) != len(wantPts) {
		t.Fatalf("sweep returned %d points, want %d", len(gotPts), len(wantPts))
	}
	for i := range gotPts {
		if gotPts[i] != wantPts[i] {
			t.Errorf("point %d: streaming %+v != in-memory %+v", i, gotPts[i], wantPts[i])
		}
	}
}

// TestStreamingServiceOutcomeCompat: the Outcome-shaped Extrapolate
// entry point keeps working on a streaming Service (callers get private
// decoded copies), predicting the same total time.
func TestStreamingServiceOutcomeCompat(t *testing.T) {
	b := mustBench(t, "grid")
	size := quickSize(b)
	ctx := context.Background()
	str := NewStreamingService(2, 0, 0)

	out, err := str.Extrapolate(ctx, b, size, 4, pcxx.ActualSize, freeCfg())
	if err != nil {
		t.Fatal(err)
	}
	pred, err := str.Predict(ctx, b, size, 4, pcxx.ActualSize, freeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.TotalTime != pred.Result.TotalTime {
		t.Errorf("Extrapolate predicts %v, Predict %v", out.Result.TotalTime, pred.Result.TotalTime)
	}
	if out.Measurement.Duration() != pred.Measured1P {
		t.Errorf("measured time %v vs %v", out.Measurement.Duration(), pred.Measured1P)
	}
}

// TestStreamingServiceTraceBudget: a measurement encoding past the
// budget surfaces core.ErrTraceTooLarge from every prediction entry
// point, and the deterministic rejection is memoized.
func TestStreamingServiceTraceBudget(t *testing.T) {
	b := mustBench(t, "grid")
	size := quickSize(b)
	ctx := context.Background()
	str := NewStreamingService(1, 4, 64) // far below any real encoding

	for i := 0; i < 2; i++ {
		if _, err := str.Predict(ctx, b, size, 4, pcxx.ActualSize, freeCfg()); !errors.Is(err, core.ErrTraceTooLarge) {
			t.Fatalf("Predict call %d: err = %v, want ErrTraceTooLarge", i, err)
		}
	}
	if _, misses := str.CacheStats(); misses != 1 {
		t.Errorf("rejected measurement ran %d times, want 1 (memoized)", misses)
	}
	job := SweepJob{Name: b.Name(), Size: size, Factory: b.Factory(size), Mode: pcxx.ActualSize, Cfg: freeCfg(), Procs: []int{2}}
	if _, err := str.Sweep(ctx, job); !errors.Is(err, core.ErrTraceTooLarge) {
		t.Errorf("Sweep err = %v, want ErrTraceTooLarge", err)
	}
}
