package experiments

import (
	"context"
	"math"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/metrics"
	"extrap/internal/model"
	"extrap/internal/pcxx"
	"extrap/internal/pool"
	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

// runner executes an experiment's measurement/simulation grid across the
// configured worker pool, memoizing measurement traces so each distinct
// (benchmark, size, threads, measure options) combination is measured and
// translated once and then simulated under every configuration. Results
// are always written to index-addressed slots and assembled sequentially,
// so the Output is byte-identical at any worker count.
type runner struct {
	opts  Options
	cache *core.TraceCache
}

func newRunner(opts Options) *runner {
	r := &runner{opts: opts}
	if opts.TraceFormat != 0 {
		// Format-pinned runs go through the encoded cache so the chosen
		// wire format is actually on the hot path (encode, then stream-
		// decode per cell), not just a label.
		r.cache = core.NewEncodedTraceCache(0, 0)
		r.cache.SetFormat(opts.TraceFormat)
	} else {
		r.cache = core.NewTraceCache()
	}
	if opts.Backend != nil {
		r.cache.SetBackend(opts.Backend)
	}
	return r
}

// each runs fn(i) for i in [0, n) on the experiment's worker pool,
// returning the lowest-indexed error (the one a sequential loop would
// report first).
func (r *runner) each(n int, fn func(i int) error) error {
	return pool.Run(r.opts.Workers, n, fn)
}

// cacheKey builds the memo-cache key for one measurement.
func cacheKey(bench string, size benchmarks.Size, threads int, mopts core.MeasureOptions) core.CacheKey {
	return core.CacheKey{
		Bench:   bench,
		N:       size.N,
		Iters:   size.Iters,
		Verify:  size.Verify,
		Threads: threads,
		Opts:    mopts,
	}
}

// MeasurementKey is the exported form of the engine's memo-cache key
// constructor, so layers above the engine (the jobs queue, the artifact
// store wiring) can address the same measurement the engine will run —
// the content address of a job cell's trace must be the key the cache
// would use, or durability would split into two namespaces.
func MeasurementKey(bench string, size benchmarks.Size, threads int, mopts core.MeasureOptions) core.CacheKey {
	return cacheKey(bench, size, threads, mopts)
}

// measured returns the (cached) measurement trace for one benchmark run.
// The returned trace is shared — callers must treat it as read-only.
func (r *runner) measured(bench string, size benchmarks.Size, threads int, mopts core.MeasureOptions, f core.ProgramFactory) (*trace.Trace, error) {
	return r.cache.Measure(cacheKey(bench, size, threads, mopts), func() (*trace.Trace, error) {
		return core.Measure(f(threads), mopts)
	})
}

// translated returns the (cached) translated trace for one benchmark run,
// measuring and translating on first use.
func (r *runner) translated(bench string, size benchmarks.Size, threads int, mopts core.MeasureOptions, f core.ProgramFactory) (*translate.ParallelTrace, error) {
	return r.cache.Translated(cacheKey(bench, size, threads, mopts), func() (*trace.Trace, error) {
		return core.Measure(f(threads), mopts)
	})
}

// SweepJob is one curve of a parameter grid: a benchmark swept over the
// processor ladder under one simulation configuration. Jobs naming the
// same benchmark/size/mode share measurement traces through the memo
// cache regardless of how their configs differ. SweepJob is exported so
// callers outside the registered experiments — notably the `extrap
// serve` API — run the same grid machinery the paper's experiments use.
type SweepJob struct {
	// Name identifies the program for the memo cache; include variant
	// parameters that change program behavior.
	Name string
	Size benchmarks.Size
	// Factory builds the program at a thread count; it must be the same
	// program whenever (Name, Size) are the same.
	Factory core.ProgramFactory
	// Mode is the transfer-size attribution for the measurement.
	Mode pcxx.SizeMode
	// Cfg is this curve's simulation configuration.
	Cfg sim.Config
	// Procs is the processor ladder for this curve.
	Procs []int
}

// job is a convenience constructor for the common benchmark-over-ladder
// case.
func (r *runner) job(b benchmarks.Benchmark, mode pcxx.SizeMode, cfg sim.Config, procs []int) SweepJob {
	return SweepJob{
		Name:    b.Name(),
		Size:    r.opts.size(b),
		Factory: b.Factory(r.opts.size(b)),
		Mode:    mode,
		Cfg:     cfg,
		Procs:   procs,
	}
}

// runGrid fans the grid across the experiment's worker pool, through
// the fitted path when the run's FitMode selects it.
func (r *runner) runGrid(jobs []SweepJob) ([][]metrics.Point, error) {
	for i := range jobs {
		jobs[i].Cfg.Replay = r.opts.Replay
	}
	if r.opts.FitMode == "fitted" {
		return runGridFitted(context.Background(), r.cache, r.opts.Workers, jobs)
	}
	return runGrid(context.Background(), r.cache, r.opts.Workers,
		batchOptions{size: r.opts.BatchSize, stats: r.opts.BatchStats}, jobs)
}

// gridCell addresses one (job, ladder index) cell of a flattened grid.
type gridCell struct{ job, pt int }

// runGrid fans every (job, processor count) cell of the grid across a
// worker pool and returns one point series per job, in job order. Each
// cell measures through the memo cache (so cells sharing a measurement
// wait for one run, then share the trace) and simulates independently
// under ctx, which bounds the measurement and simulation work of every
// cell; ctx-aborted measurements are not memoized.
//
// On an encoded cache (cache.Streams()) each cell instead pulls the
// compact immutable bytes and runs the bounded-memory streaming
// pipeline — decode, translate, and simulate flow through cursors, so
// a cell's transient footprint is the translation buffer, not the
// trace. The streaming pipeline is byte-identical to the in-memory
// one, so the grid's output is the same either way, at any worker
// count.
//
// With bo.size > 1 cells that share a measurement are simulated in
// batches through the batch kernel (see runGridBatched); the assembled
// output is byte-identical at any batch size because the batch kernel
// itself is byte-identical to per-cell simulation.
func runGrid(ctx context.Context, cache *core.TraceCache, workers int, bo batchOptions, jobs []SweepJob) ([][]metrics.Point, error) {
	// Flatten the grid so the pool load-balances across cells of every
	// job, not one job at a time.
	var cells []gridCell
	points := make([][]metrics.Point, len(jobs))
	for j := range jobs {
		points[j] = make([]metrics.Point, len(jobs[j].Procs))
		for i := range jobs[j].Procs {
			cells = append(cells, gridCell{j, i})
		}
	}
	var err error
	if bo.size > 1 {
		err = runGridBatched(ctx, cache, workers, bo, jobs, cells, points)
	} else {
		err = pool.Run(workers, len(cells), func(c int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return runCellSequential(ctx, cache, jobs, cells, points, c)
		})
	}
	if err != nil {
		return nil, err
	}
	return points, nil
}

// runCellSequential executes one grid cell on the per-cell path:
// streaming pipeline on an encoded cache, pooled-arena simulation of
// the shared translated trace otherwise.
func runCellSequential(ctx context.Context, cache *core.TraceCache, jobs []SweepJob, cells []gridCell, points [][]metrics.Point, c int) error {
	job := &jobs[cells[c].job]
	n := job.Procs[cells[c].pt]
	total, err := cellTime(ctx, cache, job, n)
	if err != nil {
		return err
	}
	points[cells[c].job][cells[c].pt] = metrics.Point{Procs: n, Time: total}
	return nil
}

// cellTime measures (through the memo cache) and simulates one cell,
// returning its exact predicted total.
func cellTime(ctx context.Context, cache *core.TraceCache, job *SweepJob, n int) (vtime.Time, error) {
	mopts := core.MeasureOptions{SizeMode: job.Mode}
	key := cacheKey(job.Name, job.Size, n, mopts)
	measure := func() (*trace.Trace, error) {
		return core.MeasureContext(ctx, job.Factory(n), mopts)
	}
	if cache.Streams() {
		enc, err := cache.Encoded(key, measure)
		if err != nil {
			return 0, err
		}
		pred, err := core.ExtrapolateEncoded(ctx, enc, job.Cfg)
		if err != nil {
			return 0, err
		}
		return pred.Result.TotalTime, nil
	}
	pt, err := cache.Translated(key, measure)
	if err != nil {
		return 0, err
	}
	res, err := simulateCell(ctx, pt, job.Cfg)
	if err != nil {
		return 0, err
	}
	return res.TotalTime, nil
}

// runGridFitted answers each job's ladder through the analytic fitted
// path: the model package's refinement picks a sparse anchor set per
// job, anchors simulate exactly like sequential grid cells (same memo
// cache, same keys), and non-anchor cells evaluate the fit, rounded to
// whole virtual nanoseconds and clamped non-negative. Jobs fan across
// the worker pool; each job's refinement is serial and deterministic,
// so the assembled output is byte-identical at any worker count.
func runGridFitted(ctx context.Context, cache *core.TraceCache, workers int, jobs []SweepJob) ([][]metrics.Point, error) {
	points := make([][]metrics.Point, len(jobs))
	err := pool.Run(workers, len(jobs), func(j int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		job := &jobs[j]
		sim := func(ctx context.Context, n int) ([]vtime.Time, error) {
			t, err := cellTime(ctx, cache, job, n)
			if err != nil {
				return nil, err
			}
			return []vtime.Time{t}, nil
		}
		res, err := model.Run(ctx, job.Procs, 1, sim, model.Options{})
		if err != nil {
			return err
		}
		points[j] = make([]metrics.Point, len(job.Procs))
		for i, p := range res.Curves[0].Points {
			if p.Simulated {
				points[j][i] = metrics.Point{Procs: p.Procs, Time: p.Exact}
				continue
			}
			v := math.Round(p.Value)
			if v < 0 {
				v = 0
			}
			points[j][i] = metrics.Point{Procs: p.Procs, Time: vtime.Time(v)}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// simulate runs one simulation of an already-translated trace.
func simulate(pt *translate.ParallelTrace, cfg sim.Config) (*sim.Result, error) {
	return sim.Simulate(pt, cfg)
}
