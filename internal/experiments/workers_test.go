package experiments

import (
	"bytes"
	"testing"

	"extrap/internal/benchmarks"
	"extrap/internal/machine"
	"extrap/internal/sim"
)

func mustBench(t *testing.T, name string) benchmarks.Benchmark {
	t.Helper()
	b, err := benchmarks.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func freeCfg() sim.Config { return machine.GenericDM().Config }

// renderExperiment runs one experiment and returns its rendered bytes.
func renderExperiment(t *testing.T, id string, opts Options) []byte {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	out.Render(&buf)
	return buf.Bytes()
}

// TestWorkersDeterministic: a parameter-grid experiment must produce
// byte-identical output at any worker count. fig7 exercises the full
// concurrent path — memo-cached measurements shared across six
// configurations, cells fanned across the pool — and fig9 the
// per-cell fan-out with two predictors per trace. Run under -race this
// also proves the shared-trace simulation path is data-race-free.
func TestWorkersDeterministic(t *testing.T) {
	for _, id := range []string{"fig7", "fig9"} {
		t.Run(id, func(t *testing.T) {
			procs := []int{1, 2, 4, 8}
			sequential := renderExperiment(t, id, Options{Quick: true, Procs: procs, Workers: 1})
			parallel := renderExperiment(t, id, Options{Quick: true, Procs: procs, Workers: 4})
			if !bytes.Equal(sequential, parallel) {
				t.Errorf("Workers=4 output differs from Workers=1:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
					sequential, parallel)
			}
		})
	}
}

// TestRunnerCachesMeasurements: fig7's six configurations over one
// benchmark must measure each ladder point once, not once per curve.
func TestRunnerCachesMeasurements(t *testing.T) {
	mgridJobCount := 6 // 2 ratios × 3 startups
	procs := []int{1, 2, 4}
	// The runner is experiment-internal, so assert on fig7's shape
	// directly: six same-benchmark jobs over the ladder must report
	// len(procs) measurements, not jobs×procs.
	r := newRunner(Options{Quick: true, Procs: procs, Workers: 2})
	var jobs []SweepJob
	for i := 0; i < mgridJobCount; i++ {
		b := mustBench(t, "mgrid")
		jobs = append(jobs, r.job(b, 0, freeCfg(), procs))
	}
	if _, err := r.runGrid(jobs); err != nil {
		t.Fatal(err)
	}
	hits, misses := r.cache.Stats()
	if want := int64(len(procs)); misses != want {
		t.Errorf("grid measured %d traces, want %d (memoized)", misses, want)
	}
	if want := int64((mgridJobCount - 1) * len(procs)); hits != want {
		t.Errorf("cache hits = %d, want %d", hits, want)
	}
}
