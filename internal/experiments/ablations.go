package experiments

import (
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/report"
	"extrap/internal/sim"
	"extrap/internal/vtime"
)

func init() {
	register(Experiment{ID: "ablation-barrier", Title: "Barrier algorithm ablation (linear vs tree vs hardware)", Run: runAblationBarrier})
	register(Experiment{ID: "ablation-contention", Title: "Contention model ablation (on vs off)", Run: runAblationContention})
	register(Experiment{ID: "ablation-multithread", Title: "Multithreading extension (n threads on m ≤ n processors)", Run: runAblationMultithread})
}

// runAblationBarrier swaps the barrier algorithm — the substitution the
// paper explicitly contemplates ("we can easily substitute other barrier
// algorithms, e.g. logarithmic") — on the barrier-heavy Cyclic benchmark.
func runAblationBarrier(opts Options) (*Output, error) {
	cy, err := benchmarks.ByName("cyclic")
	if err != nil {
		return nil, err
	}
	out := &Output{ID: "ablation-barrier", Title: "Barrier algorithms"}
	fig := report.Figure{
		Title: "Cyclic execution time by barrier algorithm", XLabel: "procs", YLabel: "ms", X: opts.procs(),
	}
	algorithms := []struct {
		name string
		alg  sim.BarrierAlgorithm
	}{
		{"linear (paper)", sim.LinearBarrier},
		{"logarithmic tree", sim.TreeBarrier},
		{"hardware (CM-5 control net)", sim.HardwareBarrier},
	}
	r := newRunner(opts)
	jobs := make([]SweepJob, len(algorithms))
	for i, a := range algorithms {
		cfg := machine.GenericDM().Config
		cfg.Barrier.Algorithm = a.alg
		cfg.Barrier.HardwareTime = 3 * vtime.Microsecond
		jobs[i] = r.job(cy, pcxx.ActualSize, cfg, opts.procs())
	}
	series, err := r.runGrid(jobs)
	if err != nil {
		return nil, err
	}
	for i, a := range algorithms {
		fig.Add(a.name, times(series[i]))
	}
	fig.Notes = []string{"the linear master-slave barrier is an upper bound on synchronization cost (Section 3.3.3)"}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

// runAblationContention toggles the analytical contention model on the
// communication-heavy Sparse benchmark.
func runAblationContention(opts Options) (*Output, error) {
	sp, err := benchmarks.ByName("sparse")
	if err != nil {
		return nil, err
	}
	out := &Output{ID: "ablation-contention", Title: "Contention model"}
	fig := report.Figure{
		Title: "Sparse execution time with and without contention", XLabel: "procs", YLabel: "ms", X: opts.procs(),
	}
	factors := []float64{0, 0.05, 0.25}
	r := newRunner(opts)
	jobs := make([]SweepJob, len(factors))
	for i, factor := range factors {
		cfg := machine.GenericDM().Config
		cfg.Comm.ContentionFactor = factor
		jobs[i] = r.job(sp, pcxx.ActualSize, cfg, opts.procs())
	}
	series, err := r.runGrid(jobs)
	if err != nil {
		return nil, err
	}
	for i, factor := range factors {
		fig.Add(fmt.Sprintf("contention=%.2f", factor), times(series[i]))
	}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

// runAblationMultithread exercises the Section 6 extension: extrapolating
// an n-thread measurement to m < n processors with thread multiplexing.
func runAblationMultithread(opts Options) (*Output, error) {
	out := &Output{ID: "ablation-multithread", Title: "n threads on m processors"}
	tab := report.Table{
		Title:   "Embar and Grid: 16 threads multiplexed onto m processors",
		Columns: []string{"benchmark", "m procs", "time", "speedup vs m=1"},
	}
	const threads = 16
	benchNames := []string{"embar", "grid"}
	msizes := []int{1, 2, 4, 8, 16}
	// Each benchmark is one 16-thread measurement, memoized across all
	// five simulated processor counts.
	r := newRunner(opts)
	var jobs []SweepJob
	for _, name := range benchNames {
		b, err := benchmarks.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, m := range msizes {
			cfg := machine.GenericDM().Config
			cfg.Procs = m
			cfg.ContextSwitchTime = 20 * vtime.Microsecond
			jobs = append(jobs, r.job(b, pcxx.ActualSize, cfg, []int{threads}))
		}
	}
	series, err := r.runGrid(jobs)
	if err != nil {
		return nil, err
	}
	for bi, name := range benchNames {
		var base vtime.Time
		for mi, m := range msizes {
			t := series[bi*len(msizes)+mi][0].Time
			if m == 1 {
				base = t
			}
			tab.AddRow(name, m, t.String(), fmt.Sprintf("%.2f", float64(base)/float64(t)))
		}
	}
	tab.Notes = []string{"the measurement is a single 16-thread run; only the simulated processor count changes"}
	out.Tables = append(out.Tables, tab)
	return out, nil
}
