package experiments

import (
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/report"
	"extrap/internal/sim"
	"extrap/internal/vtime"
)

func init() {
	register(Experiment{ID: "ablation-barrier", Title: "Barrier algorithm ablation (linear vs tree vs hardware)", Run: runAblationBarrier})
	register(Experiment{ID: "ablation-contention", Title: "Contention model ablation (on vs off)", Run: runAblationContention})
	register(Experiment{ID: "ablation-multithread", Title: "Multithreading extension (n threads on m ≤ n processors)", Run: runAblationMultithread})
}

// runAblationBarrier swaps the barrier algorithm — the substitution the
// paper explicitly contemplates ("we can easily substitute other barrier
// algorithms, e.g. logarithmic") — on the barrier-heavy Cyclic benchmark.
func runAblationBarrier(opts Options) (*Output, error) {
	cy, err := benchmarks.ByName("cyclic")
	if err != nil {
		return nil, err
	}
	out := &Output{ID: "ablation-barrier", Title: "Barrier algorithms"}
	fig := report.Figure{
		Title: "Cyclic execution time by barrier algorithm", XLabel: "procs", YLabel: "ms", X: opts.procs(),
	}
	algorithms := []struct {
		name string
		alg  sim.BarrierAlgorithm
	}{
		{"linear (paper)", sim.LinearBarrier},
		{"logarithmic tree", sim.TreeBarrier},
		{"hardware (CM-5 control net)", sim.HardwareBarrier},
	}
	for _, a := range algorithms {
		cfg := machine.GenericDM().Config
		cfg.Barrier.Algorithm = a.alg
		cfg.Barrier.HardwareTime = 3 * vtime.Microsecond
		points, err := sweep(cy.Factory(opts.size(cy)), pcxx.ActualSize, cfg, opts.procs())
		if err != nil {
			return nil, err
		}
		fig.Add(a.name, times(points))
	}
	fig.Notes = []string{"the linear master-slave barrier is an upper bound on synchronization cost (Section 3.3.3)"}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

// runAblationContention toggles the analytical contention model on the
// communication-heavy Sparse benchmark.
func runAblationContention(opts Options) (*Output, error) {
	sp, err := benchmarks.ByName("sparse")
	if err != nil {
		return nil, err
	}
	out := &Output{ID: "ablation-contention", Title: "Contention model"}
	fig := report.Figure{
		Title: "Sparse execution time with and without contention", XLabel: "procs", YLabel: "ms", X: opts.procs(),
	}
	for _, factor := range []float64{0, 0.05, 0.25} {
		cfg := machine.GenericDM().Config
		cfg.Comm.ContentionFactor = factor
		points, err := sweep(sp.Factory(opts.size(sp)), pcxx.ActualSize, cfg, opts.procs())
		if err != nil {
			return nil, err
		}
		fig.Add(fmt.Sprintf("contention=%.2f", factor), times(points))
	}
	out.Figures = append(out.Figures, fig)
	return out, nil
}

// runAblationMultithread exercises the Section 6 extension: extrapolating
// an n-thread measurement to m < n processors with thread multiplexing.
func runAblationMultithread(opts Options) (*Output, error) {
	out := &Output{ID: "ablation-multithread", Title: "n threads on m processors"}
	tab := report.Table{
		Title:   "Embar and Grid: 16 threads multiplexed onto m processors",
		Columns: []string{"benchmark", "m procs", "time", "speedup vs m=1"},
	}
	const threads = 16
	for _, name := range []string{"embar", "grid"} {
		b, err := benchmarks.ByName(name)
		if err != nil {
			return nil, err
		}
		var base vtime.Time
		for _, m := range []int{1, 2, 4, 8, 16} {
			cfg := machine.GenericDM().Config
			cfg.Procs = m
			cfg.ContextSwitchTime = 20 * vtime.Microsecond
			points, err := sweep(b.Factory(opts.size(b)), pcxx.ActualSize, cfg, []int{threads})
			if err != nil {
				return nil, err
			}
			t := points[0].Time
			if m == 1 {
				base = t
			}
			tab.AddRow(name, m, t.String(), fmt.Sprintf("%.2f", float64(base)/float64(t)))
		}
	}
	tab.Notes = []string{"the measurement is a single 16-thread run; only the simulated processor count changes"}
	out.Tables = append(out.Tables, tab)
	return out, nil
}
