package experiments

import (
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/report"
	"extrap/internal/sim"
	"extrap/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Effects of the remote data request service policy",
		Run:   runFig8,
	})
}

// runFig8 reproduces Figure 8: Cyclic and Grid execution times under the
// remote-request service policies — no-interrupt (requests wait for the
// owner to block), interrupt (active-message style), and polling at 100,
// 500, and 1000 µs intervals — with CommStartupTime raised to 100 µs as
// in the paper's parameter note.
func runFig8(opts Options) (*Output, error) {
	policies := []struct {
		name string
		pol  sim.Policy
	}{
		{"no-interrupt/poll", sim.Policy{Kind: sim.NoInterrupt, ServiceTime: 15 * vtime.Microsecond}},
		{"interrupt", sim.Policy{Kind: sim.Interrupt, InterruptOverhead: 10 * vtime.Microsecond, ServiceTime: 15 * vtime.Microsecond}},
		{"poll 100µs", pollPolicy(100)},
		{"poll 500µs", pollPolicy(500)},
		{"poll 1000µs", pollPolicy(1000)},
	}

	out := &Output{ID: "fig8", Title: "Remote data request service policies"}
	benchNames := []string{"cyclic", "grid"}
	r := newRunner(opts)
	var jobs []SweepJob
	for _, benchName := range benchNames {
		b, err := benchmarks.ByName(benchName)
		if err != nil {
			return nil, err
		}
		for _, p := range policies {
			cfg := machine.GenericDM().Config
			cfg.Comm.StartupTime = 100 * vtime.Microsecond
			cfg.Policy = p.pol
			jobs = append(jobs, r.job(b, pcxx.ActualSize, cfg, opts.procs()))
		}
	}
	series, err := r.runGrid(jobs)
	if err != nil {
		return nil, err
	}
	for bi, benchName := range benchNames {
		fig := report.Figure{
			Title:  fmt.Sprintf("Figure 8: %s execution time by policy", benchName),
			XLabel: "procs", YLabel: "ms", X: opts.procs(),
		}
		for pi, p := range policies {
			fig.Add(p.name, times(series[bi*len(policies)+pi]))
		}
		fig.Notes = []string{
			"expect: no-interrupt worst; interrupt best for grid;",
			"polling competitive for cyclic at larger processor counts",
		}
		out.Figures = append(out.Figures, fig)
	}
	return out, nil
}

func pollPolicy(intervalUs int) sim.Policy {
	return sim.Policy{
		Kind:         sim.Poll,
		PollInterval: vtime.Time(intervalUs) * vtime.Microsecond,
		PollOverhead: 2 * vtime.Microsecond,
		ServiceTime:  15 * vtime.Microsecond,
	}
}
