package experiments

import (
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/report"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Execution time and speedup with different MipsRatio",
		Run:   runFig6,
	})
}

// runFig6 reproduces Figure 6: processor scaling under MipsRatio 2.0
// (target 2× slower), 1.0, and 0.5 (target 2× faster) for the four
// benchmarks the paper graphs — Embar execution time (i), Cyclic speedup
// (ii), Sort speedup (iii), and Mgrid speedup (iv) — plus Poisson, whose
// communication bottleneck the text notes only bites at 32 processors.
func runFig6(opts Options) (*Output, error) {
	ratios := []float64{2.0, 1.0, 0.5}
	out := &Output{ID: "fig6", Title: "MipsRatio extrapolation"}
	graphs := []struct {
		bench  string
		metric string // "time" or "speedup"
		label  string
	}{
		{"embar", "time", "(i) Embar execution time"},
		{"cyclic", "speedup", "(ii) Cyclic speedup"},
		{"sort", "speedup", "(iii) Sort speedup"},
		{"mgrid", "speedup", "(iv) Mgrid speedup"},
		{"poisson", "speedup", "(extra) Poisson speedup"},
	}
	// One job per (benchmark, ratio) curve; the memo cache shares each
	// benchmark's per-ladder measurements across all three ratios.
	r := newRunner(opts)
	var jobs []SweepJob
	for _, g := range graphs {
		b, err := benchmarks.ByName(g.bench)
		if err != nil {
			return nil, err
		}
		for _, ratio := range ratios {
			cfg := machine.GenericDM().Config
			cfg.MipsRatio = ratio
			jobs = append(jobs, r.job(b, pcxx.ActualSize, cfg, opts.procs()))
		}
	}
	series, err := r.runGrid(jobs)
	if err != nil {
		return nil, err
	}
	for gi, g := range graphs {
		fig := report.Figure{
			Title:  fmt.Sprintf("Figure 6 %s", g.label),
			XLabel: "procs", YLabel: g.metric, X: opts.procs(),
		}
		for ri, ratio := range ratios {
			points := series[gi*len(ratios)+ri]
			name := fmt.Sprintf("MipsRatio=%.1f", ratio)
			if g.metric == "time" {
				fig.Add(name, times(points))
			} else {
				fig.Add(name, metrics.Speedup(points))
			}
		}
		out.Figures = append(out.Figures, fig)
	}
	out.Figures[0].Notes = []string{"expect 2× time shifts for compute-bound Embar"}
	out.Figures[3].Notes = []string{"expect Mgrid's speedup to react strongly: computation/communication ratio shifts"}
	return out, nil
}
