package experiments

import (
	"context"
	"errors"
	"testing"

	"extrap/internal/benchmarks"
	"extrap/internal/pcxx"
)

// quickSize returns the fast test size for a benchmark.
func quickSize(b benchmarks.Benchmark) benchmarks.Size {
	return Options{Quick: true}.size(b)
}

func TestServiceExtrapolateSharesMeasurements(t *testing.T) {
	s := NewService(2, 0)
	b := mustBench(t, "grid")
	size := quickSize(b)
	ctx := context.Background()

	first, err := s.Extrapolate(ctx, b, size, 4, pcxx.ActualSize, freeCfg())
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Extrapolate(ctx, b, size, 4, pcxx.ActualSize, freeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if first.Result.TotalTime != second.Result.TotalTime {
		t.Errorf("repeat extrapolation differs: %v vs %v", first.Result.TotalTime, second.Result.TotalTime)
	}
	hits, misses := s.CacheStats()
	if misses != 1 {
		t.Errorf("measurements run = %d, want 1 (memoized)", misses)
	}
	if hits == 0 {
		t.Error("no cache hits recorded for a repeated request")
	}
}

func TestServiceSweepMatchesRunnerGrid(t *testing.T) {
	b := mustBench(t, "cyclic")
	procs := []int{1, 2, 4}
	r := newRunner(Options{Quick: true, Procs: procs, Workers: 1})
	job := r.job(b, pcxx.ActualSize, freeCfg(), procs)

	want, err := r.runGrid([]SweepJob{job})
	if err != nil {
		t.Fatal(err)
	}
	s := NewService(3, 0)
	got, err := s.Sweep(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want[0]) {
		t.Fatalf("sweep returned %d points, want %d", len(got), len(want[0]))
	}
	for i := range got {
		if got[i] != want[0][i] {
			t.Errorf("point %d: service %+v != runner %+v", i, got[i], want[0][i])
		}
	}
}

func TestServiceSweepSharesCacheWithExtrapolate(t *testing.T) {
	s := NewService(2, 0)
	b := mustBench(t, "cyclic")
	size := quickSize(b)
	job := SweepJob{
		Name:    b.Name(),
		Size:    size,
		Factory: b.Factory(size),
		Mode:    pcxx.ActualSize,
		Cfg:     freeCfg(),
		Procs:   []int{1, 2, 4},
	}
	if _, err := s.Sweep(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	_, missesAfterSweep := s.CacheStats()
	// A single prediction at a ladder point must reuse the sweep's trace.
	if _, err := s.Extrapolate(context.Background(), b, size, 2, pcxx.ActualSize, freeCfg()); err != nil {
		t.Fatal(err)
	}
	_, misses := s.CacheStats()
	if misses != missesAfterSweep {
		t.Errorf("extrapolate after sweep re-measured: misses %d → %d", missesAfterSweep, misses)
	}
}

func TestServiceCancellation(t *testing.T) {
	s := NewService(2, 0)
	b := mustBench(t, "grid")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Extrapolate(ctx, b, quickSize(b), 4, pcxx.ActualSize, freeCfg()); !errors.Is(err, context.Canceled) {
		t.Errorf("Extrapolate error = %v, want context.Canceled", err)
	}
	job := SweepJob{Name: b.Name(), Size: quickSize(b), Factory: b.Factory(quickSize(b)), Cfg: freeCfg(), Procs: []int{1, 2}}
	if _, err := s.Sweep(ctx, job); !errors.Is(err, context.Canceled) {
		t.Errorf("Sweep error = %v, want context.Canceled", err)
	}
	if _, err := s.Extrapolate(context.Background(), b, quickSize(b), 0, pcxx.ActualSize, freeCfg()); err == nil {
		t.Error("zero thread count accepted")
	}
}
