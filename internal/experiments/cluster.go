package experiments

import (
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/report"
	"extrap/internal/sim"
	"extrap/internal/sim/network"
	"extrap/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "ablation-cluster",
		Title: "Multi-cluster extension: shared memory within clusters, messages between",
		Run:   runAblationCluster,
	})
}

// runAblationCluster exercises the multi-clustered system the paper's
// Section 3.3.2 anticipates ("a multi-clustered system with shared memory
// access within a cluster and message passing between clusters"): the
// Grid benchmark on 16 processors grouped into clusters of 1 (pure
// distributed memory), 2, 4, 8, and 16 (pure shared memory), under both
// thread placements.
func runAblationCluster(opts Options) (*Output, error) {
	grid, err := benchmarks.ByName("grid")
	if err != nil {
		return nil, err
	}
	size := opts.size(grid)
	threads := 16
	if opts.Quick {
		threads = 8
	}

	intra := network.Config{
		StartupTime:      2 * vtime.Microsecond,
		ByteTransferTime: 5 * vtime.Nanosecond, // 200 MB/s shared memory
		MsgConstructTime: 500 * vtime.Nanosecond,
		RecvOverhead:     1 * vtime.Microsecond,
		RecvOccupancy:    200 * vtime.Nanosecond,
		Topology:         network.Bus{},
		RequestBytes:     16,
	}

	out := &Output{ID: "ablation-cluster", Title: "Cluster size sweep (Grid)"}
	tab := report.Table{
		Title: fmt.Sprintf("Grid, %d threads on %d processors: cluster size × placement", threads, threads/2),
		Columns: []string{"cluster size", "placement", "time",
			"network msgs", "note"},
	}
	// One measurement and one translation feed every cell; only the
	// simulations fan out.
	r := newRunner(opts)
	mopts := core.MeasureOptions{SizeMode: pcxx.ActualSize}
	pt, err := r.translated(grid.Name(), size, threads, mopts, grid.Factory(size))
	if err != nil {
		return nil, err
	}
	// Multiplex two threads per processor so placement has something to
	// decide (with a 1:1 mapping both policies are the identity).
	procs := threads / 2
	type cell struct {
		cs  int
		pl  sim.Placement
		res *sim.Result
	}
	var cells []cell
	for _, cs := range []int{1, 2, 4, procs} {
		if cs > procs {
			continue
		}
		for _, pl := range []sim.Placement{sim.BlockPlacement, sim.CyclicPlacement} {
			cells = append(cells, cell{cs: cs, pl: pl})
		}
	}
	err = r.each(len(cells), func(i int) error {
		cfg := machine.GenericDM().Config
		cfg.Procs = procs
		cfg.ClusterSize = cells[i].cs
		cfg.IntraComm = intra
		cfg.Placement = cells[i].pl
		cfg.ContextSwitchTime = 10 * vtime.Microsecond
		res, err := simulate(pt, cfg)
		if err != nil {
			return err
		}
		cells[i].res = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		note := ""
		switch {
		case c.cs == 1:
			note = "pure distributed memory"
		case c.cs >= procs:
			note = "pure shared memory"
		}
		tab.AddRow(c.cs, c.pl.String(), c.res.TotalTime.String(), c.res.Net.Messages, note)
	}
	tab.Notes = []string{
		"larger clusters convert inter-processor reads into cheap shared-memory accesses;",
		"placement decides which neighbors land in the same cluster",
	}
	out.Tables = append(out.Tables, tab)
	return out, nil
}
