package experiments

import (
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/machine"
	"extrap/internal/report"
	"extrap/internal/sim"
	"extrap/internal/sim/network"
	"extrap/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "ablation-cluster",
		Title: "Multi-cluster extension: shared memory within clusters, messages between",
		Run:   runAblationCluster,
	})
}

// runAblationCluster exercises the multi-clustered system the paper's
// Section 3.3.2 anticipates ("a multi-clustered system with shared memory
// access within a cluster and message passing between clusters"): the
// Grid benchmark on 16 processors grouped into clusters of 1 (pure
// distributed memory), 2, 4, 8, and 16 (pure shared memory), under both
// thread placements.
func runAblationCluster(opts Options) (*Output, error) {
	grid, err := benchmarks.ByName("grid")
	if err != nil {
		return nil, err
	}
	size := opts.size(grid)
	threads := 16
	if opts.Quick {
		threads = 8
	}

	intra := network.Config{
		StartupTime:      2 * vtime.Microsecond,
		ByteTransferTime: 5 * vtime.Nanosecond, // 200 MB/s shared memory
		MsgConstructTime: 500 * vtime.Nanosecond,
		RecvOverhead:     1 * vtime.Microsecond,
		RecvOccupancy:    200 * vtime.Nanosecond,
		Topology:         network.Bus{},
		RequestBytes:     16,
	}

	out := &Output{ID: "ablation-cluster", Title: "Cluster size sweep (Grid)"}
	tab := report.Table{
		Title: fmt.Sprintf("Grid, %d threads on %d processors: cluster size × placement", threads, threads/2),
		Columns: []string{"cluster size", "placement", "time",
			"network msgs", "note"},
	}
	tr, err := measureOnce(grid, size, threads)
	if err != nil {
		return nil, err
	}
	// Multiplex two threads per processor so placement has something to
	// decide (with a 1:1 mapping both policies are the identity).
	procs := threads / 2
	for _, cs := range []int{1, 2, 4, procs} {
		if cs > procs {
			continue
		}
		for _, pl := range []sim.Placement{sim.BlockPlacement, sim.CyclicPlacement} {
			cfg := machine.GenericDM().Config
			cfg.Procs = procs
			cfg.ClusterSize = cs
			cfg.IntraComm = intra
			cfg.Placement = pl
			cfg.ContextSwitchTime = 10 * vtime.Microsecond
			o, err := extrapolateTrace(tr, cfg)
			if err != nil {
				return nil, err
			}
			note := ""
			switch {
			case cs == 1:
				note = "pure distributed memory"
			case cs >= procs:
				note = "pure shared memory"
			}
			tab.AddRow(cs, pl.String(), o.TotalTime.String(), o.Net.Messages, note)
		}
	}
	tab.Notes = []string{
		"larger clusters convert inter-processor reads into cheap shared-memory accesses;",
		"placement decides which neighbors land in the same cluster",
	}
	out.Tables = append(out.Tables, tab)
	return out, nil
}
