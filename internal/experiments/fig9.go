package experiments

import (
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/direct"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/pcxx/dist"
	"extrap/internal/report"
	"extrap/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Matmul validation: predicted (ExtraP, CM-5 parameters) vs actual (direct CM-5 model)",
		Run:   runFig9,
	})
}

// matmulDists enumerates the nine distribution combinations of Figure 9.
func matmulDists() [][2]dist.Attr {
	attrs := []dist.Attr{dist.Block, dist.Cyclic, dist.Whole}
	var out [][2]dist.Attr
	for _, a := range attrs {
		for _, b := range attrs {
			out = append(out, [2]dist.Attr{a, b})
		}
	}
	return out
}

// runFig9 reproduces the validation study: Matmul with all nine data
// distributions, extrapolated with the Table 3 CM-5 parameter set, versus
// the independent direct CM-5 machine model standing in for the physical
// machine. The claim under test is not absolute accuracy but that the
// extrapolation preserves the relative ranking of the distribution
// choices — the property that makes it usable for optimization decisions.
func runFig9(opts Options) (*Output, error) {
	mm, err := benchmarks.ByName("matmul")
	if err != nil {
		return nil, err
	}
	size := opts.size(mm)
	size.Verify = false
	procs := opts.procs()
	env := machine.CM5()

	out := &Output{ID: "fig9", Title: "Matmul predicted vs actual"}
	predFig := report.Figure{
		Title: "Figure 9 (predicted): Matmul on CM-5 parameters", XLabel: "procs", YLabel: "ms", X: procs,
	}
	actFig := report.Figure{
		Title: "Figure 9 (actual): Matmul on the direct CM-5 model", XLabel: "procs", YLabel: "ms", X: procs,
	}

	dists := matmulDists()
	names := make([]string, len(dists))
	for di, d := range dists {
		names[di] = fmt.Sprintf("(%s,%s)", d[0], d[1])
	}

	// Every (distribution, procs) cell is independent: fan them all out,
	// each running both predictors on the same (cached) measurement.
	r := newRunner(opts)
	mopts := core.MeasureOptions{SizeMode: pcxx.ActualSize}
	cells := make([][]fig9Cell, len(dists))
	for di := range cells {
		cells[di] = make([]fig9Cell, len(procs))
	}
	err = r.each(len(dists)*len(procs), func(c int) error {
		di, pi := c/len(procs), c%len(procs)
		n := procs[pi]
		factory := benchmarks.MatmulFactory(size, dists[di][0], dists[di][1])
		tr, err := r.measured("matmul"+names[di], size, n, mopts, factory)
		if err != nil {
			return fmt.Errorf("fig9 %s procs=%d: %w", names[di], n, err)
		}
		outc, err := core.Extrapolate(tr, env.Config)
		if err != nil {
			return err
		}
		act, err := direct.Run(tr, direct.CM5())
		if err != nil {
			return err
		}
		cells[di][pi] = fig9Cell{pred: outc.Result.TotalTime, act: act.TotalTime}
		return nil
	})
	if err != nil {
		return nil, err
	}

	grid := map[string]map[int]fig9Cell{}
	for di, name := range names {
		grid[name] = map[int]fig9Cell{}
		predT := make([]float64, len(procs))
		actT := make([]float64, len(procs))
		for pi, n := range procs {
			grid[name][n] = cells[di][pi]
			predT[pi] = cells[di][pi].pred.Millis()
			actT[pi] = cells[di][pi].act.Millis()
		}
		predFig.Add(name, predT)
		actFig.Add(name, actT)
	}

	// Ranking agreement: does the predicted best distribution match the
	// actual best at each processor count, and how close is the predicted
	// best to the actual optimum when it differs?
	rank := report.Table{
		Title:   "Ranking agreement per processor count",
		Columns: []string{"procs", "predicted best", "actual best", "match", "penalty vs optimum", "rank corr"},
	}
	for _, n := range procs {
		bestPred, bestAct := "", ""
		var bp, ba vtime.Time = vtime.Forever, vtime.Forever
		for _, name := range names {
			c := grid[name][n]
			if c.pred < bp {
				bp, bestPred = c.pred, name
			}
			if c.act < ba {
				ba, bestAct = c.act, name
			}
		}
		// If the predicted best differs, how much worse is it on the
		// "actual" machine than the true optimum (the paper reports 3%)?
		// A penalty under 1% is a performance tie (e.g. (Whole,Block) vs
		// (Whole,Cyclic) when the column interleave is immaterial).
		penalty := float64(grid[bestPred][n].act-ba) / float64(ba) * 100
		match := "yes"
		switch {
		case bestPred == bestAct:
		case penalty < 1.0:
			match = "tie"
		default:
			match = "no"
		}
		rank.AddRow(n, bestPred, bestAct, match,
			fmt.Sprintf("%.1f%%", penalty), fmt.Sprintf("%.2f", rankCorrelation(names, grid, n)))
	}
	rank.Notes = []string{
		"the paper: same best choice at every processor count except 32,",
		"where the predicted best was within 3% of the actual optimum",
	}

	out.Figures = append(out.Figures, predFig, actFig)
	out.Tables = append(out.Tables, rank)
	return out, nil
}

// fig9Cell pairs the two predictions for one (distribution, procs) point.
type fig9Cell struct{ pred, act vtime.Time }

// rankCorrelation computes Spearman's ρ between predicted and actual
// orderings of the distributions at one processor count.
func rankCorrelation(names []string, grid map[string]map[int]fig9Cell, n int) float64 {
	rankOf := func(key func(string) vtime.Time) map[string]int {
		order := append([]string(nil), names...)
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && key(order[j]) < key(order[j-1]); j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		r := map[string]int{}
		for i, nm := range order {
			r[nm] = i
		}
		return r
	}
	pr := rankOf(func(nm string) vtime.Time { return grid[nm][n].pred })
	ar := rankOf(func(nm string) vtime.Time { return grid[nm][n].act })
	var d2 float64
	for _, nm := range names {
		d := float64(pr[nm] - ar[nm])
		d2 += d * d
	}
	k := float64(len(names))
	return 1 - 6*d2/(k*(k*k-1))
}
