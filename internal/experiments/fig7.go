package experiments

import (
	"fmt"

	"extrap/internal/benchmarks"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/report"
	"extrap/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Effect of MipsRatio and CommStartupTime on Mgrid",
		Run:   runFig7,
	})
}

// runFig7 reproduces Figure 7: Mgrid execution times for the cross
// product MipsRatio {1.0, 0.25} × CommStartupTime {5, 100, 200} µs. The
// paper's observation: the processor count delivering minimum execution
// time drops (16 → 4 in their data) when the faster processor
// (MipsRatio 0.25) makes communication overhead dominant earlier.
func runFig7(opts Options) (*Output, error) {
	mgrid, err := benchmarks.ByName("mgrid")
	if err != nil {
		return nil, err
	}
	ratios := []float64{1.0, 0.25}
	startups := []vtime.Time{5 * vtime.Microsecond, 100 * vtime.Microsecond, 200 * vtime.Microsecond}

	out := &Output{ID: "fig7", Title: "MipsRatio × CommStartupTime on Mgrid"}
	fig := report.Figure{
		Title: "Figure 7: Mgrid execution time", XLabel: "procs", YLabel: "ms", X: opts.procs(),
	}
	minTab := report.Table{
		Title:   "Minimum-time processor count",
		Columns: []string{"MipsRatio", "CommStartupTime", "best procs", "best time"},
	}
	// Six configurations over one benchmark: the memo cache measures each
	// ladder point once and simulates it under all six parameter sets.
	r := newRunner(opts)
	var jobs []SweepJob
	for _, ratio := range ratios {
		for _, su := range startups {
			cfg := machine.GenericDM().Config
			cfg.MipsRatio = ratio
			cfg.Comm.StartupTime = su
			jobs = append(jobs, r.job(mgrid, pcxx.ActualSize, cfg, opts.procs()))
		}
	}
	series, err := r.runGrid(jobs)
	if err != nil {
		return nil, err
	}
	for ri, ratio := range ratios {
		for si, su := range startups {
			points := series[ri*len(startups)+si]
			name := fmt.Sprintf("ratio=%.2f startup=%v", ratio, su)
			fig.Add(name, times(points))
			best := metrics.MinTimePoint(points)
			minTab.AddRow(fmt.Sprintf("%.2f", ratio), su.String(), best.Procs, best.Time.String())
		}
	}
	minTab.Notes = []string{
		"expect: the faster target processor (ratio 0.25) reaches its minimum at fewer processors",
		"because communication overhead dominates earlier",
	}
	out.Figures = append(out.Figures, fig)
	out.Tables = append(out.Tables, minTab)
	return out, nil
}
