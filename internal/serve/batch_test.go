package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

const multiSweepBody = `{"benchmark":"grid","size":16,"iters":4,"machines":["cm5","shared-mem","generic-dm"],"procs":[1,2,4]}`

// TestSweepMachinesMultiCurve: a machines sweep answers one curve per
// machine, each byte-identical to the single-machine sweep of that
// machine, and the whole body is byte-identical whether the server
// batches or not.
func TestSweepMachinesMultiCurve(t *testing.T) {
	_, plain := newTestServer(t, Config{})
	status, base := post(t, plain.URL+"/v1/sweep", multiSweepBody)
	if status != http.StatusOK {
		t.Fatalf("multi sweep: status %d: %s", status, base)
	}
	var multi MultiSweepResponse
	if err := json.Unmarshal([]byte(base), &multi); err != nil {
		t.Fatal(err)
	}
	if len(multi.Curves) != 3 {
		t.Fatalf("%d curves, want 3", len(multi.Curves))
	}
	for _, curve := range multi.Curves {
		body := `{"benchmark":"grid","size":16,"iters":4,"machine":"` + curve.Machine + `","procs":[1,2,4]}`
		status, single := post(t, plain.URL+"/v1/sweep", body)
		if status != http.StatusOK {
			t.Fatalf("single sweep %s: status %d: %s", curve.Machine, status, single)
		}
		var sr SweepResponse
		if err := json.Unmarshal([]byte(single), &sr); err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(sr.Points)
		got, _ := json.Marshal(curve.Points)
		if string(got) != string(want) {
			t.Errorf("machine %s: multi curve %s differs from single sweep %s", curve.Machine, got, want)
		}
	}

	srv, batched := newTestServer(t, Config{BatchSize: 8, Workers: 4})
	status, got := post(t, batched.URL+"/v1/sweep", multiSweepBody)
	if status != http.StatusOK {
		t.Fatalf("batched multi sweep: status %d: %s", status, got)
	}
	if got != base {
		t.Errorf("batched response differs from per-cell response:\n%s\nvs\n%s", got, base)
	}
	if bs := srv.svc.BatchStats(); bs.CellsBatched == 0 {
		t.Errorf("batch counters = %+v, want batched cells", bs)
	}

	// The batch counters surface on /debug/vars.
	status, vars := get(t, batched.URL+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("vars: status %d", status)
	}
	var root map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &root); err != nil {
		t.Fatal(err)
	}
	var es struct {
		Batch struct {
			Batches            int64 `json:"batches"`
			CellsBatched       int64 `json:"cells_batched"`
			FallbackSequential int64 `json:"fallback_sequential"`
		} `json:"batch"`
	}
	if err := json.Unmarshal(root["extrap_serve"], &es); err != nil {
		t.Fatal(err)
	}
	if es.Batch.Batches == 0 || es.Batch.CellsBatched == 0 {
		t.Errorf("vars batch counters = %+v, want nonzero batches and cells", es.Batch)
	}
}

// TestSweepMachinesValidation: machine/machines exclusivity, unknown
// and duplicate names, and the list bound.
func TestSweepMachinesValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, wantCode string
	}{
		{"both fields", `{"benchmark":"grid","machine":"cm5","machines":["ideal"]}`, "invalid_machines"},
		{"unknown entry", `{"benchmark":"grid","machines":["cm5","nosuch"]}`, "unknown_machine"},
		{"duplicate entry", `{"benchmark":"grid","machines":["cm5","cm5"]}`, "invalid_machines"},
		{"neither field", `{"benchmark":"grid"}`, "missing_machine"},
		{"too many", `{"benchmark":"grid","machines":[` + strings.Repeat(`"cm5",`, maxSweepMachines) + `"ideal"]}`, "invalid_machines"},
	}
	for _, tc := range cases {
		status, body := post(t, ts.URL+"/v1/sweep", tc.body)
		if status != http.StatusBadRequest || !strings.Contains(body, tc.wantCode) {
			t.Errorf("%s: status %d body %s, want 400 %s", tc.name, status, body, tc.wantCode)
		}
	}
}

// TestJobMachinesBatchedByteIdenticalAcrossRestart: a multi-machine job
// on a batching server completes with a MultiResult byte-identical to
// the synchronous machines sweep, and a fresh server — batching off —
// on the same store serves the identical result without recomputing.
func TestJobMachinesBatchedByteIdenticalAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StoreDir: dir, BatchSize: 8, Workers: 2})

	status, syncBody := post(t, ts1.URL+"/v1/sweep", multiSweepBody)
	if status != http.StatusOK {
		t.Fatalf("sync sweep: status %d: %s", status, syncBody)
	}

	status, subBody := post(t, ts1.URL+"/v1/jobs", multiSweepBody)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, subBody)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal([]byte(subBody), &sub); err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, ts1.URL, sub.ID)
	if final.Status != "done" || final.MultiResult == nil || final.Result != nil {
		t.Fatalf("job finished %+v", final)
	}
	if final.TotalCells != 9 || final.DoneCells != 9 {
		t.Errorf("cells = %d/%d, want 9/9", final.DoneCells, final.TotalCells)
	}
	async, err := json.Marshal(final.MultiResult)
	if err != nil {
		t.Fatal(err)
	}
	if string(async) != strings.TrimSpace(syncBody) {
		t.Errorf("async multi result differs from sync sweep:\n%s\nvs\n%s", async, strings.TrimSpace(syncBody))
	}

	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Config{StoreDir: dir})
	second := waitJob(t, ts2.URL, sub.ID)
	if second.Status != "done" || second.MultiResult == nil {
		t.Fatalf("restarted job state %+v", second)
	}
	got, err := json.Marshal(second.MultiResult)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(async) {
		t.Errorf("result changed across restart (batch off):\n%s\nvs\n%s", got, async)
	}
}
