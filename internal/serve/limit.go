package serve

import (
	"context"
	"sync/atomic"
	"time"
)

// limiter bounds the number of compute requests in flight. Excess
// requests may queue for a slot up to a configurable wait; past that
// they are shed so the server degrades by rejecting (429) instead of
// collapsing under unbounded concurrent simulations.
type limiter struct {
	slots   chan struct{}
	wait    time.Duration
	waiting atomic.Int64 // requests queued for a slot right now
}

func newLimiter(n int, wait time.Duration) *limiter {
	return &limiter{slots: make(chan struct{}, n), wait: wait}
}

// acquire claims a slot, queueing up to the limiter's wait while the
// request's context stays live. It reports whether a slot was obtained;
// callers must release exactly once when it returns true.
func (l *limiter) acquire(ctx context.Context) bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
	}
	if l.wait <= 0 {
		return false
	}
	l.waiting.Add(1)
	defer l.waiting.Add(-1)
	timer := time.NewTimer(l.wait)
	defer timer.Stop()
	select {
	case l.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	case <-timer.C:
		return false
	}
}

// backlog reports how many requests are queued for a slot — the queue
// depth the Retry-After hint is derived from.
func (l *limiter) backlog() int { return int(l.waiting.Load()) }

func (l *limiter) release() { <-l.slots }
