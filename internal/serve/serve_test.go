package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"extrap/internal/sim"
)

// newTestServer returns a Server with quiet logging and test-friendly
// defaults, plus an httptest server mounted on its handler.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns status and body bytes.
func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// extrapBody builds a small extrapolate request payload.
func extrapBody(bench string, threads int, machine string) string {
	return fmt.Sprintf(`{"benchmark":%q,"size":16,"iters":4,"threads":%d,"machine":%q}`,
		bench, threads, machine)
}

// TestConcurrentExtrapolateByteIdentical is the acceptance load test:
// 32 concurrent clients (a mix of four distinct requests) must each get
// a 200 with a body byte-identical to the sequential run's. Under -race
// this also proves the shared cache/simulation path is data-race-free.
func TestConcurrentExtrapolateByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 64, Workers: 4})

	payloads := []string{
		extrapBody("grid", 4, "cm5"),
		extrapBody("grid", 4, "generic-dm"),
		extrapBody("cyclic", 8, "cm5"),
		extrapBody("embar", 2, "shared-mem"),
	}
	want := make(map[string]string)
	for _, p := range payloads {
		status, body := post(t, ts.URL+"/v1/extrapolate", p)
		if status != http.StatusOK {
			t.Fatalf("sequential request %s: status %d: %s", p, status, body)
		}
		want[p] = body
	}

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		p := payloads[i%len(payloads)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/extrapolate", "application/json", strings.NewReader(p))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			if string(body) != want[p] {
				errs <- fmt.Errorf("concurrent body differs from sequential:\n%s\nvs\n%s", body, want[p])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestInFlightLimit: with one slot held and no queueing, the next
// compute request must be shed with 429 and a typed error body, and
// succeed again after the slot frees.
func TestInFlightLimit(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueWait: 0})

	if !s.lim.acquire(context.Background()) {
		t.Fatal("could not take the only slot")
	}
	resp, err := http.Post(ts.URL+"/v1/extrapolate", "application/json",
		strings.NewReader(extrapBody("grid", 4, "cm5")))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"code":"overloaded"`) {
		t.Errorf("429 body missing typed code: %s", body)
	}
	// Retry-After must be a backlog-derived integer, not a constant
	// sentinel; with an idle queue the floor is one second.
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Errorf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	} else if ra < 1 || ra > 30 {
		t.Errorf("Retry-After = %d, want within [1, 30]", ra)
	}
	s.lim.release()

	status, body := post(t, ts.URL+"/v1/extrapolate", extrapBody("grid", 4, "cm5"))
	if status != http.StatusOK {
		t.Fatalf("after release: status = %d: %s", status, body)
	}
}

// TestRetryAfterScalesWithBacklog: queued waiters must raise the advice
// returned to shed clients — Retry-After is derived from queue depth,
// not a constant.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInFlight: 1, QueueWait: 2 * time.Second})

	if !s.lim.acquire(context.Background()) {
		t.Fatal("could not take the only slot")
	}
	defer s.lim.release()
	// Park waiters in the queue to build a backlog.
	const waiters = 3
	release := make(chan struct{})
	var wg sync.WaitGroup
	for range waiters {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			go func() { <-release; cancel() }()
			if s.lim.acquire(ctx) {
				s.lim.release()
			}
		}()
	}
	defer func() { close(release); wg.Wait() }()
	deadline := time.Now().Add(time.Second)
	for s.lim.backlog() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("backlog = %d, want %d", s.lim.backlog(), waiters)
		}
		time.Sleep(time.Millisecond)
	}

	// Drive the limited wrapper directly with an already-cancelled
	// request context: acquire sheds immediately, and the 429 must carry
	// advice scaled to the parked waiters.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/extrapolate",
		strings.NewReader(extrapBody("grid", 4, "cm5"))).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.limited(func(http.ResponseWriter, *http.Request) {
		t.Error("handler ran despite shed")
	})(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", rec.Header().Get("Retry-After"), err)
	}
	if ra < 1+waiters {
		t.Errorf("Retry-After = %d with backlog %d, want >= %d", ra, waiters, 1+waiters)
	}
}

// TestLimiterQueueing: with queueing enabled, a briefly-held slot delays
// rather than sheds the next request.
func TestLimiterQueueing(t *testing.T) {
	l := newLimiter(1, 2*time.Second)
	if !l.acquire(context.Background()) {
		t.Fatal("first acquire failed")
	}
	done := make(chan bool)
	go func() { done <- l.acquire(context.Background()) }()
	time.Sleep(20 * time.Millisecond)
	l.release()
	if !<-done {
		t.Error("queued acquire did not get the freed slot")
	}
	l.release()

	// A dead context sheds a queued waiter.
	if !l.acquire(context.Background()) {
		t.Fatal("re-acquire failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if l.acquire(ctx) {
		t.Error("acquire succeeded past its context deadline")
	}
	l.release()
}

// TestDebugVarsExportsCacheHits: repeated identical requests must show
// non-zero cache_hits at /debug/vars, plus request/status counters.
func TestDebugVarsExportsCacheHits(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body := extrapBody("grid", 4, "cm5")
	for i := 0; i < 3; i++ {
		if status, b := post(t, ts.URL+"/v1/extrapolate", body); status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, b)
		}
	}
	status, varsBody := get(t, ts.URL+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars status %d", status)
	}
	var vars struct {
		ExtrapServe struct {
			Requests    map[string]int64 `json:"requests"`
			Statuses    map[string]int64 `json:"responses_by_status"`
			CacheHits   int64            `json:"cache_hits"`
			CacheMisses int64            `json:"cache_misses"`
			LatencyUs   int64            `json:"latency_us_total"`
		} `json:"extrap_serve"`
		Memstats map[string]any `json:"memstats"`
	}
	if err := json.Unmarshal([]byte(varsBody), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, varsBody)
	}
	es := vars.ExtrapServe
	if es.CacheHits == 0 {
		t.Errorf("cache_hits = 0 after repeated identical requests\n%s", varsBody)
	}
	if es.CacheMisses != 1 {
		t.Errorf("cache_misses = %d, want 1", es.CacheMisses)
	}
	if es.Requests["/v1/extrapolate"] != 3 {
		t.Errorf("request counter = %d, want 3", es.Requests["/v1/extrapolate"])
	}
	if es.Statuses["2xx"] != 3 {
		t.Errorf("2xx counter = %d, want 3", es.Statuses["2xx"])
	}
	if es.LatencyUs <= 0 {
		t.Errorf("latency_us_total = %d, want > 0", es.LatencyUs)
	}
	if len(vars.Memstats) == 0 {
		t.Error("expvar globals (memstats) missing from /debug/vars")
	}
}

// TestDebugVarsSimReplaySubmap: /debug/vars exposes the pattern-replay
// kernel counters under extrap_serve.sim, and replay_mode_event tracks
// the configured replay mode.
func TestDebugVarsSimReplaySubmap(t *testing.T) {
	for _, tc := range []struct {
		name      string
		mode      sim.ReplayMode
		wantEvent int64
	}{
		{"pattern", sim.ReplayPattern, 0},
		{"event", sim.ReplayEvent, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, Config{Replay: tc.mode})
			if status, b := post(t, ts.URL+"/v1/extrapolate", extrapBody("grid", 4, "cm5")); status != http.StatusOK {
				t.Fatalf("extrapolate: status %d: %s", status, b)
			}
			status, varsBody := get(t, ts.URL+"/debug/vars")
			if status != http.StatusOK {
				t.Fatalf("/debug/vars status %d", status)
			}
			var vars struct {
				ExtrapServe struct {
					Sim map[string]int64 `json:"sim"`
				} `json:"extrap_serve"`
			}
			if err := json.Unmarshal([]byte(varsBody), &vars); err != nil {
				t.Fatalf("/debug/vars is not JSON: %v\n%s", err, varsBody)
			}
			sm := vars.ExtrapServe.Sim
			if sm == nil {
				t.Fatalf("sim submap missing from /debug/vars\n%.400s", varsBody)
			}
			for _, key := range []string{"ff_attempts", "fast_forwards", "iterations_skipped", "fallbacks"} {
				if _, ok := sm[key]; !ok {
					t.Errorf("sim submap missing %q\n%.400s", key, varsBody)
				}
			}
			if got := sm["replay_mode_event"]; got != tc.wantEvent {
				t.Errorf("replay_mode_event = %d, want %d", got, tc.wantEvent)
			}
		})
	}
}

// TestValidationErrors: malformed and out-of-range inputs return typed
// error envelopes with the right status.
func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed json", `{`, http.StatusBadRequest, "invalid_json"},
		{"unknown field", `{"benchmark":"grid","threads":4,"machine":"cm5","bogus":1}`, http.StatusBadRequest, "invalid_json"},
		{"missing benchmark", `{"threads":4,"machine":"cm5"}`, http.StatusBadRequest, "missing_benchmark"},
		{"unknown benchmark", `{"benchmark":"nosuch","threads":4,"machine":"cm5"}`, http.StatusBadRequest, "unknown_benchmark"},
		{"missing machine", `{"benchmark":"grid","threads":4}`, http.StatusBadRequest, "missing_machine"},
		{"unknown machine", `{"benchmark":"grid","threads":4,"machine":"nosuch"}`, http.StatusBadRequest, "unknown_machine"},
		{"zero threads", `{"benchmark":"grid","machine":"cm5"}`, http.StatusBadRequest, "invalid_threads"},
		{"huge threads", `{"benchmark":"grid","threads":100000,"machine":"cm5"}`, http.StatusBadRequest, "invalid_threads"},
		{"negative size", `{"benchmark":"grid","size":-1,"threads":4,"machine":"cm5"}`, http.StatusBadRequest, "invalid_size"},
		{"huge iters", `{"benchmark":"grid","iters":99999999,"threads":4,"machine":"cm5"}`, http.StatusBadRequest, "invalid_iters"},
		{"non-divisor procs", `{"benchmark":"grid","threads":4,"procs":3,"machine":"cm5"}`, http.StatusBadRequest, "invalid_procs"},
		{"negative procs", `{"benchmark":"grid","threads":4,"procs":-2,"machine":"cm5"}`, http.StatusBadRequest, "invalid_procs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, ts.URL+"/v1/extrapolate", tc.body)
			if status != tc.status {
				t.Errorf("status = %d, want %d (%s)", status, tc.status, body)
			}
			if !strings.Contains(body, fmt.Sprintf("%q:%q", "code", tc.code)) {
				t.Errorf("body missing code %q: %s", tc.code, body)
			}
		})
	}

	// Sweep-specific validation.
	status, body := post(t, ts.URL+"/v1/sweep", `{"benchmark":"grid","machine":"cm5","procs":[0]}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "invalid_procs") {
		t.Errorf("bad ladder: status %d body %s", status, body)
	}
	status, body = post(t, ts.URL+"/v1/sweep",
		`{"benchmark":"grid","machine":"cm5","procs":[1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1]}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "invalid_procs") {
		t.Errorf("oversized ladder: status %d body %s", status, body)
	}

	// Wrong method on a POST route is a 405 from the pattern router.
	if status, _ := get(t, ts.URL+"/v1/extrapolate"); status != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST route: status %d, want 405", status)
	}
}

// TestRequestTimeout: an unmeetable deadline surfaces as 504 with the
// "timeout" code rather than hanging or returning 500.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	status, body := post(t, ts.URL+"/v1/extrapolate", extrapBody("grid", 4, "cm5"))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", status, body)
	}
	if !strings.Contains(body, `"code":"timeout"`) {
		t.Errorf("504 body missing timeout code: %s", body)
	}
}

// TestSweepEndpoint: a ladder sweep returns one deterministic point per
// entry with sane speedup/efficiency, byte-identical on repeat.
func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	body := `{"benchmark":"cyclic","size":64,"iters":4,"machine":"cm5","procs":[1,2,4]}`
	status, first := post(t, ts.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, first)
	}
	var resp SweepResponse
	if err := json.Unmarshal([]byte(first), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(resp.Points))
	}
	for i, want := range []int{1, 2, 4} {
		p := resp.Points[i]
		if p.Procs != want || p.PredictedMs <= 0 {
			t.Errorf("point %d = %+v, want procs %d and positive time", i, p, want)
		}
	}
	if resp.Points[0].Speedup != 1 || resp.Points[0].Efficiency != 1 {
		t.Errorf("1-proc point not the baseline: %+v", resp.Points[0])
	}
	if _, second := post(t, ts.URL+"/v1/sweep", body); second != first {
		t.Errorf("repeat sweep differs:\n%s\nvs\n%s", second, first)
	}
}

// TestRegistryEndpoints: benchmark and machine listings enumerate the
// registries in sorted order.
func TestRegistryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/v1/benchmarks")
	if status != http.StatusOK {
		t.Fatalf("benchmarks status %d", status)
	}
	var bs []BenchmarkInfo
	if err := json.Unmarshal([]byte(body), &bs); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, b := range bs {
		names[b.Name] = true
	}
	for _, want := range []string{"grid", "cyclic", "embar", "matmul"} {
		if !names[want] {
			t.Errorf("benchmark list missing %q", want)
		}
	}

	status, body = get(t, ts.URL+"/v1/machines")
	if status != http.StatusOK {
		t.Fatalf("machines status %d", status)
	}
	var ms []MachineInfo
	if err := json.Unmarshal([]byte(body), &ms); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Name == "cm5" {
			found = true
		}
	}
	if !found {
		t.Error("machine list missing cm5")
	}

	if status, body := get(t, ts.URL+"/v1/healthz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %s", status, body)
	}
}

// TestPprofGating: pprof routes exist only when enabled.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{})
	if status, _ := get(t, off.URL+"/debug/pprof/"); status != http.StatusNotFound {
		t.Errorf("pprof served while disabled: %d", status)
	}
	_, on := newTestServer(t, Config{EnablePprof: true})
	if status, _ := get(t, on.URL+"/debug/pprof/"); status != http.StatusOK {
		t.Errorf("pprof index status %d, want 200", status)
	}
}

// TestGracefulShutdown: cancelling the serve context drains and returns
// nil; the listener stops accepting afterward.
func TestGracefulShutdown(t *testing.T) {
	s, err := New(Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	status, _ := get(t, url+"/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz before shutdown: %d", status)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after context cancellation")
	}
	if _, err := http.Get(url + "/v1/healthz"); err == nil {
		t.Error("server still accepting after shutdown")
	}
}

// TestWorkBudgetBoundsCombinedProduct: each field within its individual
// ceiling must still be rejected when the combined size×iters×threads
// product is extreme — otherwise one request near every ceiling holds an
// in-flight slot for hours.
func TestWorkBudgetBoundsCombinedProduct(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"benchmark":"grid","size":65536,"iters":65536,"threads":256,"machine":"cm5"}`
	status, resp := post(t, ts.URL+"/v1/extrapolate", body)
	if status != http.StatusBadRequest || !strings.Contains(resp, "work_budget_exceeded") {
		t.Errorf("extrapolate: status %d body %s, want 400 work_budget_exceeded", status, resp)
	}
	// The sweep budget covers the ladder's thread total.
	body = `{"benchmark":"grid","size":65536,"iters":4096,"machine":"cm5","procs":[256,256,256,256]}`
	status, resp = post(t, ts.URL+"/v1/sweep", body)
	if status != http.StatusBadRequest || !strings.Contains(resp, "work_budget_exceeded") {
		t.Errorf("sweep: status %d body %s, want 400 work_budget_exceeded", status, resp)
	}
	// Paper-scale configurations stay comfortably inside the budget.
	status, resp = post(t, ts.URL+"/v1/extrapolate", `{"benchmark":"sort","threads":32,"machine":"cm5"}`)
	if status != http.StatusOK {
		t.Errorf("paper-scale sort: status %d body %s, want 200", status, resp)
	}
}

// TestPipelineErrorStatusMapping: the server's deadline is a 504, a
// client disconnect is a 499 (so aborted clients don't count as server
// 5xx), and anything else is a 422.
func TestPipelineErrorStatusMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{fmt.Errorf("sim: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, "timeout"},
		{fmt.Errorf("sim: %w", context.Canceled), statusClientClosedRequest, "client_closed_request"},
		{fmt.Errorf("bad topology"), http.StatusUnprocessableEntity, "extrapolation_failed"},
	}
	for _, tc := range cases {
		e := pipelineError(tc.err)
		if e.Status != tc.status || e.Code != tc.code {
			t.Errorf("pipelineError(%v) = %d %q, want %d %q", tc.err, e.Status, e.Code, tc.status, tc.code)
		}
	}
	if got := statusClass(statusClientClosedRequest); got != "4xx" {
		t.Errorf("statusClass(499) = %q, want 4xx", got)
	}
}

// TestTimeoutInterruptsHeavyMeasurement: a measurement that would run
// for ~10s uninterrupted must be aborted by the request deadline — the
// context is polled inside the measurement runtime, so a pathological
// request cannot hold its in-flight slot past RequestTimeout.
func TestTimeoutInterruptsHeavyMeasurement(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: 100 * time.Millisecond})
	start := time.Now()
	// embar's size parameter is an exponent: N=28 means 2^28 samples.
	status, body := post(t, ts.URL+"/v1/extrapolate",
		`{"benchmark":"embar","size":28,"threads":2,"machine":"cm5"}`)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", status, body)
	}
	if !strings.Contains(body, `"code":"timeout"`) {
		t.Errorf("504 body missing timeout code: %s", body)
	}
	if elapsed > 2500*time.Millisecond {
		t.Errorf("request took %v; the measurement was not interrupted by its deadline", elapsed)
	}
}

// TestClientDisconnectCountsAs4xx: a client that goes away mid-pipeline
// must be accounted as 499 (4xx), not 5xx, so error-rate metrics track
// server failures only.
func TestClientDisconnectCountsAs4xx(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/extrapolate",
		strings.NewReader(`{"benchmark":"embar","size":28,"threads":2,"machine":"cm5"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("heavy request finished before the client deadline; raise the problem size")
	}

	// The server finishes accounting the aborted request asynchronously.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, varsBody := get(t, ts.URL+"/debug/vars")
		var vars struct {
			ExtrapServe struct {
				Statuses map[string]int64 `json:"responses_by_status"`
			} `json:"extrap_serve"`
		}
		if err := json.Unmarshal([]byte(varsBody), &vars); err != nil {
			t.Fatalf("/debug/vars not JSON: %v", err)
		}
		if vars.ExtrapServe.Statuses["5xx"] > 0 {
			t.Fatalf("client disconnect accounted as 5xx: %s", varsBody)
		}
		if vars.ExtrapServe.Statuses["4xx"] > 0 {
			return // 499 landed in the 4xx bucket
		}
		if time.Now().After(deadline) {
			t.Fatalf("aborted request never accounted: %s", varsBody)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
