package serve

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"extrap/internal/core"
)

// TestTraceBudgetReturns413: a server with a tiny per-trace budget must
// reject compute requests with 413 and the typed trace_too_large code —
// the untrusted-parameter path cannot force an over-budget measurement
// to stay resident.
func TestTraceBudgetReturns413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTraceBytes: 64})

	status, body := post(t, ts.URL+"/v1/extrapolate", extrapBody("grid", 4, "cm5"))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", status, body)
	}
	if !strings.Contains(body, `"code":"trace_too_large"`) {
		t.Errorf("413 body missing typed code: %s", body)
	}

	// Sweeps measure through the same budgeted cache.
	status, body = post(t, ts.URL+"/v1/sweep",
		`{"benchmark":"cyclic","size":64,"iters":4,"machine":"cm5","procs":[1,2]}`)
	if status != http.StatusRequestEntityTooLarge || !strings.Contains(body, "trace_too_large") {
		t.Errorf("sweep: status %d body %s, want 413 trace_too_large", status, body)
	}

	// The rejection is deterministic, so it is memoized: repeating the
	// request must not re-run the measurement.
	_, before := get(t, ts.URL+"/debug/vars")
	post(t, ts.URL+"/v1/extrapolate", extrapBody("grid", 4, "cm5"))
	_, after := get(t, ts.URL+"/debug/vars")
	if missField(t, before) != missField(t, after) {
		t.Errorf("repeated rejected request re-measured:\n%s\nvs\n%s", before, after)
	}
}

// missField extracts the cache_misses counter from a /debug/vars body.
func missField(t *testing.T, varsBody string) string {
	t.Helper()
	i := strings.Index(varsBody, `"cache_misses"`)
	if i < 0 {
		t.Fatalf("no cache_misses in %s", varsBody)
	}
	end := strings.IndexByte(varsBody[i:], ',')
	if end < 0 {
		end = len(varsBody) - i
	}
	return varsBody[i : i+end]
}

// TestTraceTooLargeErrorMapping: the pipeline error mapper recognizes
// wrapped budget errors.
func TestTraceTooLargeErrorMapping(t *testing.T) {
	e := pipelineError(fmt.Errorf("measuring grid: %w", core.ErrTraceTooLarge))
	if e.Status != http.StatusRequestEntityTooLarge || e.Code != "trace_too_large" {
		t.Errorf("pipelineError = %d %q, want 413 trace_too_large", e.Status, e.Code)
	}
}

// TestDefaultBudgetAdmitsNormalTraces: the default 256 MiB budget must
// not reject ordinary requests, and disabling the budget (< 0) works.
func TestDefaultBudgetAdmitsNormalTraces(t *testing.T) {
	for _, cfg := range []Config{{}, {MaxTraceBytes: -1}} {
		_, ts := newTestServer(t, cfg)
		status, body := post(t, ts.URL+"/v1/extrapolate", extrapBody("grid", 4, "cm5"))
		if status != http.StatusOK {
			t.Errorf("MaxTraceBytes=%d: status %d body %s, want 200", cfg.MaxTraceBytes, status, body)
		}
	}
}
