package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"extrap/internal/trace"
)

// del sends a DELETE and returns status and body.
func del(t *testing.T, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// waitJob polls GET /v1/jobs/{id} until the job reaches a terminal
// status or the deadline passes, and returns the final response body.
func waitJob(t *testing.T, base, id string) JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		status, body := get(t, base+"/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("GET job %s: status %d: %s", id, status, body)
		}
		var resp JobStatusResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("GET job %s: bad JSON %q: %v", id, body, err)
		}
		switch resp.Status {
		case "done", "failed", "cancelled":
			return resp
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within deadline", id)
	return JobStatusResponse{}
}

// TestJobsRequireStore: without -store-dir the async jobs endpoints
// answer 503 store_disabled rather than pretending to be durable.
func TestJobsRequireStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	type result struct {
		status int
		body   string
	}
	var checks []result
	s, b := post(t, ts.URL+"/v1/jobs", `{"benchmark":"grid","machine":"cm5"}`)
	checks = append(checks, result{s, b})
	s, b = get(t, ts.URL+"/v1/jobs")
	checks = append(checks, result{s, b})
	s, b = get(t, ts.URL+"/v1/jobs/j-00")
	checks = append(checks, result{s, b})
	s, b = del(t, ts.URL+"/v1/jobs/j-00")
	checks = append(checks, result{s, b})
	for i, c := range checks {
		if c.status != http.StatusServiceUnavailable || !strings.Contains(c.body, "store_disabled") {
			t.Errorf("endpoint %d: status %d body %s, want 503 store_disabled", i, c.status, c.body)
		}
	}
}

// TestJobLifecycleByteIdentical is the jobs acceptance test: a job
// submitted through POST /v1/jobs must complete with a result
// byte-identical to the synchronous POST /v1/sweep response for the
// same request.
func TestJobLifecycleByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreDir: t.TempDir(), Workers: 2})

	body := `{"benchmark":"grid","size":16,"iters":4,"machine":"cm5","procs":[1,2,4]}`
	status, syncBody := post(t, ts.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("sync sweep: status %d: %s", status, syncBody)
	}

	status, subBody := post(t, ts.URL+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, subBody)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal([]byte(subBody), &sub); err != nil {
		t.Fatalf("submit body %q: %v", subBody, err)
	}
	if sub.ID == "" || sub.Status != "queued" {
		t.Fatalf("submit response %+v", sub)
	}

	final := waitJob(t, ts.URL, sub.ID)
	if final.Status != "done" || final.Error != "" {
		t.Fatalf("job finished %+v", final)
	}
	if final.TotalCells != 3 || final.DoneCells != 3 {
		t.Errorf("cells = %d/%d, want 3/3", final.DoneCells, final.TotalCells)
	}
	if final.Result == nil {
		t.Fatal("done job has no result")
	}
	async, err := json.Marshal(final.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(async) != strings.TrimSpace(syncBody) {
		t.Errorf("async result differs from sync sweep:\n%s\nvs\n%s", async, strings.TrimSpace(syncBody))
	}

	// The list endpoint knows the job but strips results.
	status, listBody := get(t, ts.URL+"/v1/jobs")
	if status != http.StatusOK || !strings.Contains(listBody, sub.ID) {
		t.Errorf("list: status %d body %s", status, listBody)
	}
	if strings.Contains(listBody, `"result"`) {
		t.Errorf("list leaks results: %s", listBody)
	}
}

// TestJobValidation: POST /v1/jobs applies the same request validation
// as the synchronous endpoint, and unknown job IDs 404.
func TestJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreDir: t.TempDir()})

	status, body := post(t, ts.URL+"/v1/jobs", `{"benchmark":"nope","machine":"cm5"}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "unknown_benchmark") {
		t.Errorf("bad benchmark: status %d body %s", status, body)
	}
	status, body = post(t, ts.URL+"/v1/jobs", `{"benchmark":"grid","machine":"cm5","procs":[0]}`)
	if status != http.StatusBadRequest || !strings.Contains(body, "invalid_procs") {
		t.Errorf("bad procs: status %d body %s", status, body)
	}
	if status, body = get(t, ts.URL+"/v1/jobs/j-missing"); status != http.StatusNotFound || !strings.Contains(body, "unknown_job") {
		t.Errorf("get unknown: status %d body %s", status, body)
	}
	if status, body = del(t, ts.URL+"/v1/jobs/j-missing"); status != http.StatusNotFound || !strings.Contains(body, "unknown_job") {
		t.Errorf("cancel unknown: status %d body %s", status, body)
	}
}

// TestJobResultSurvivesRestart: a completed job must still be readable
// — with a byte-identical result — from a fresh server opened on the
// same store directory, without re-running the sweep.
func TestJobResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StoreDir: dir})

	body := `{"benchmark":"grid","size":16,"iters":4,"machine":"cm5","procs":[1,2]}`
	status, subBody := post(t, ts1.URL+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, subBody)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal([]byte(subBody), &sub); err != nil {
		t.Fatal(err)
	}
	first := waitJob(t, ts1.URL, sub.ID)
	if first.Status != "done" {
		t.Fatalf("job finished %+v", first)
	}
	wantResult, err := json.Marshal(first.Result)
	if err != nil {
		t.Fatal(err)
	}

	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Config{StoreDir: dir})
	second := waitJob(t, ts2.URL, sub.ID)
	if second.Status != "done" {
		t.Fatalf("restarted job state %+v", second)
	}
	gotResult, err := json.Marshal(second.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotResult) != string(wantResult) {
		t.Errorf("result changed across restart:\n%s\nvs\n%s", gotResult, wantResult)
	}
}

// TestMixedFormatStoreAcrossRestart: a store directory written by an
// XTRP1 server keeps working after a restart onto the XTRP2 default.
// The finished job reads back byte-identically, its old artifacts are
// served under their XTRP1 keys (the format fallback), and new work on
// the restarted server persists in XTRP2 — both formats coexisting in
// one store, with the mixed-store answers matching a fresh all-XTRP2
// server's.
func TestMixedFormatStoreAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StoreDir: dir, TraceFormat: trace.FormatXTRP1})

	body := `{"benchmark":"grid","size":16,"iters":4,"machine":"cm5","procs":[1,2]}`
	status, subBody := post(t, ts1.URL+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, subBody)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal([]byte(subBody), &sub); err != nil {
		t.Fatal(err)
	}
	first := waitJob(t, ts1.URL, sub.ID)
	if first.Status != "done" {
		t.Fatalf("job finished %+v", first)
	}
	wantResult, err := json.Marshal(first.Result)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directory with the (default) XTRP2 format.
	_, ts2 := newTestServer(t, Config{StoreDir: dir})
	resumed := waitJob(t, ts2.URL, sub.ID)
	if resumed.Status != "done" {
		t.Fatalf("restarted job state %+v", resumed)
	}
	gotResult, err := json.Marshal(resumed.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotResult) != string(wantResult) {
		t.Errorf("result changed across format migration:\n%s\nvs\n%s", gotResult, wantResult)
	}
	if len(resumed.Artifacts) != 2 {
		t.Fatalf("artifacts = %+v, want one per ladder point", resumed.Artifacts)
	}
	for _, a := range resumed.Artifacts {
		if a.Format != "xtrp1" || a.EncodedBytes <= 0 {
			t.Errorf("artifact %+v, want pre-migration format xtrp1 and a positive size", a)
		}
	}

	// New work on the restarted server: a different machine forces the
	// predictions to be recomputed from the stored traces, so procs 1–2
	// replay the old XTRP1 artifacts while proc 4 is measured fresh and
	// persisted in XTRP2.
	body2 := `{"benchmark":"grid","size":16,"iters":4,"machine":"generic-dm","procs":[1,2,4]}`
	status, subBody = post(t, ts2.URL+"/v1/jobs", body2)
	if status != http.StatusAccepted {
		t.Fatalf("second submit: status %d: %s", status, subBody)
	}
	if err := json.Unmarshal([]byte(subBody), &sub); err != nil {
		t.Fatal(err)
	}
	mixed := waitJob(t, ts2.URL, sub.ID)
	if mixed.Status != "done" {
		t.Fatalf("second job finished %+v", mixed)
	}
	formats := map[int]string{}
	for _, a := range mixed.Artifacts {
		formats[a.Procs] = a.Format
	}
	want := map[int]string{1: "xtrp1", 2: "xtrp1", 4: "xtrp2"}
	for n, f := range want {
		if formats[n] != f {
			t.Errorf("procs=%d stored as %q, want %q (all: %v)", n, formats[n], f, formats)
		}
	}

	// The mixed-store answer is byte-identical to a fresh all-XTRP2
	// server computing the same sweep from scratch.
	_, ts3 := newTestServer(t, Config{StoreDir: t.TempDir()})
	status, fresh := post(t, ts3.URL+"/v1/sweep", body2)
	if status != http.StatusOK {
		t.Fatalf("fresh sweep: status %d: %s", status, fresh)
	}
	mixedResult, err := json.Marshal(mixed.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(mixedResult) != strings.TrimSpace(fresh) {
		t.Errorf("mixed-format store answer differs from fresh server:\n%s\nvs\n%s",
			mixedResult, strings.TrimSpace(fresh))
	}
}

// TestVarsStoreJobsCounters: with a store open, /debug/vars exposes the
// store and jobs counter submaps with sane values.
func TestVarsStoreJobsCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreDir: t.TempDir()})

	body := `{"benchmark":"grid","size":16,"iters":4,"machine":"cm5","procs":[1,2]}`
	status, subBody := post(t, ts.URL+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, subBody)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal([]byte(subBody), &sub); err != nil {
		t.Fatal(err)
	}
	waitJob(t, ts.URL, sub.ID)

	status, varsBody := get(t, ts.URL+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("vars: status %d", status)
	}
	var vars struct {
		ExtrapServe struct {
			Store map[string]int64 `json:"store"`
			Jobs  map[string]int64 `json:"jobs"`
		} `json:"extrap_serve"`
	}
	if err := json.Unmarshal([]byte(varsBody), &vars); err != nil {
		t.Fatalf("vars JSON: %v\n%s", err, varsBody)
	}
	st, jb := vars.ExtrapServe.Store, vars.ExtrapServe.Jobs
	if st == nil || jb == nil {
		t.Fatalf("missing store/jobs submaps:\n%s", varsBody)
	}
	if st["puts"] < 1 || st["objects"] < 1 || st["bytes"] < 1 {
		t.Errorf("store counters %+v, want puts/objects/bytes ≥ 1", st)
	}
	if jb["done"] != 1 || jb["submitted"] != 1 {
		t.Errorf("jobs counters %+v, want done=1 submitted=1", jb)
	}
	if jb["cells_loaded"]+jb["cells_computed"] != 2 {
		t.Errorf("jobs counters %+v, want loaded+computed = 2", jb)
	}
}

// TestCorruptArtifactRecomputedThroughServer: flip bytes in every
// stored artifact, restart the server on the directory, and re-run the
// same sweep. The corrupt artifacts must be detected and quarantined —
// never decoded into a response — and the recomputed answer must be
// byte-identical to the original.
func TestCorruptArtifactRecomputedThroughServer(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StoreDir: dir})

	body := `{"benchmark":"grid","size":16,"iters":4,"machine":"cm5","procs":[1,2]}`
	status, want := post(t, ts1.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("first sweep: status %d: %s", status, want)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte deep inside every artifact payload.
	arts, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*.art"))
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) == 0 {
		t.Fatal("no artifacts persisted by first sweep")
	}
	for _, p := range arts {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0xFF
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	_, ts2 := newTestServer(t, Config{StoreDir: dir})
	status, got := post(t, ts2.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("sweep after corruption: status %d: %s", status, got)
	}
	if got != want {
		t.Errorf("recomputed sweep differs from original:\n%s\nvs\n%s", got, want)
	}

	_, varsBody := get(t, ts2.URL+"/debug/vars")
	var vars struct {
		ExtrapServe struct {
			Store map[string]int64 `json:"store"`
		} `json:"extrap_serve"`
	}
	if err := json.Unmarshal([]byte(varsBody), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.ExtrapServe.Store["corruptions"] < 1 {
		t.Errorf("store counters %+v, want corruptions ≥ 1", vars.ExtrapServe.Store)
	}
	quarantined, err := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) == 0 {
		t.Error("no artifacts quarantined after corruption")
	}
}

// TestJobCancel: a running job can be cancelled over HTTP and settles
// in the cancelled state; cancelling a terminal job is a no-op.
func TestJobCancel(t *testing.T) {
	srv, ts := newTestServer(t, Config{StoreDir: t.TempDir()})

	// Freeze the job at its first cell so the cancel races nothing.
	frozen := make(chan struct{})
	release := make(chan struct{})
	var once bool
	srv.jobs.SetCellHook(func(string, int) {
		if !once {
			once = true
			close(frozen)
			<-release
		}
	})

	body := `{"benchmark":"grid","size":16,"iters":4,"machine":"cm5","procs":[1,2,4]}`
	status, subBody := post(t, ts.URL+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, subBody)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal([]byte(subBody), &sub); err != nil {
		t.Fatal(err)
	}
	<-frozen

	status, cancelBody := del(t, ts.URL+"/v1/jobs/"+sub.ID)
	if status != http.StatusOK {
		t.Fatalf("cancel: status %d: %s", status, cancelBody)
	}
	close(release)

	final := waitJob(t, ts.URL, sub.ID)
	if final.Status != "cancelled" {
		t.Fatalf("after cancel: %+v", final)
	}
	// Cancelling again reports the terminal state without error.
	status, again := del(t, ts.URL+"/v1/jobs/"+sub.ID)
	if status != http.StatusOK || !strings.Contains(again, "cancelled") {
		t.Errorf("re-cancel: status %d body %s", status, again)
	}
}
