package serve

import (
	"expvar"
	"fmt"
	"net/http"

	"extrap/internal/compose"
	"extrap/internal/model"
	"extrap/internal/sim"
	"extrap/internal/trace"
)

// metricsSet is the server's observability slice, held as expvar vars.
// The vars are deliberately NOT published into the process-global expvar
// registry — expvar.Publish panics on duplicate names, which would
// forbid running more than one Server per process (tests do, and
// embedders may). Instead the server's own GET /debug/vars handler
// renders this set alongside the globals expvar publishes by default
// (cmdline, memstats).
type metricsSet struct {
	requests    *expvar.Map // request count by route
	statuses    *expvar.Map // response count by status class ("2xx", ...)
	rejected    *expvar.Int // requests shed by the in-flight limiter
	inflight    *expvar.Int // compute requests currently holding a slot
	latencyUs   *expvar.Int // cumulative handler wall time, µs
	cacheHits   *expvar.Int // trace-cache lookups served from memory
	cacheMisses *expvar.Int // measurement runs performed

	jobsSubmitted *expvar.Int // jobs accepted via POST /v1/jobs
	storeVars     *expvar.Map // artifact store hit/miss/evict/corrupt (set when a store is open)
	jobsVars      *expvar.Map // jobs queued/running/done/failed (set when jobs are enabled)
	batchVars     *expvar.Map // batched-sweep counters (batches, cells_batched, fallback_sequential)
	compVars      *expvar.Map // trace-compaction counters (raw/encoded bytes, replay vs literal)
	clusterVars   *expvar.Map // shard routing/execution counters (set when Role isn't solo)
	fittedVars    *expvar.Map // fitted-sweep counters (runs, iterations, anchors, fitted cells)
	composeVars   *expvar.Map // workload-DSL counters (specs parsed, programs synthesized, cache hits)
	simVars       *expvar.Map // replay fast-forward counters (attempts, fast_forwards, iterations_skipped, fallbacks)
}

func newMetricsSet() *metricsSet {
	return &metricsSet{
		requests:      new(expvar.Map).Init(),
		statuses:      new(expvar.Map).Init(),
		rejected:      new(expvar.Int),
		inflight:      new(expvar.Int),
		latencyUs:     new(expvar.Int),
		cacheHits:     new(expvar.Int),
		cacheMisses:   new(expvar.Int),
		jobsSubmitted: new(expvar.Int),
		storeVars:     new(expvar.Map).Init(),
		jobsVars:      new(expvar.Map).Init(),
		batchVars:     new(expvar.Map).Init(),
		compVars:      new(expvar.Map).Init(),
		clusterVars:   new(expvar.Map).Init(),
		fittedVars:    new(expvar.Map).Init(),
		composeVars:   new(expvar.Map).Init(),
		simVars:       new(expvar.Map).Init(),
	}
}

// setInt upserts an *expvar.Int value in a map (expvar.Map has no typed
// getter, so keep the upsert in one place).
func setInt(m *expvar.Map, key string, v int64) {
	i := new(expvar.Int)
	i.Set(v)
	m.Set(key, i)
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// vars assembles the set as one expvar.Map for rendering.
func (m *metricsSet) vars() *expvar.Map {
	v := new(expvar.Map).Init()
	v.Set("requests", m.requests)
	v.Set("responses_by_status", m.statuses)
	v.Set("rejected", m.rejected)
	v.Set("inflight", m.inflight)
	v.Set("latency_us_total", m.latencyUs)
	v.Set("cache_hits", m.cacheHits)
	v.Set("cache_misses", m.cacheMisses)
	return v
}

// handleVars serves GET /debug/vars in the standard expvar JSON shape:
// the server's own counters under "extrap_serve", then every var
// published in the process-global registry.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.svc.CacheStats()
	s.met.cacheHits.Set(hits)
	s.met.cacheMisses.Set(misses)

	root := s.met.vars()
	cs := s.svc.CompressionStats()
	tc := trace.ReadCompressionCounters()
	cv := s.met.compVars
	setInt(cv, "raw_bytes", cs.RawBytes)
	setInt(cv, "encoded_bytes", cs.EncodedBytes)
	setInt(cv, "encoded_traces", int64(tc.EncodedTraces))
	setInt(cv, "pattern_table_entries", int64(tc.PatternEntries))
	setInt(cv, "replayed_events", int64(tc.ReplayEvents))
	setInt(cv, "literal_events", int64(tc.LiteralEvents))
	root.Set("compression", cv)
	bs := s.svc.BatchStats()
	bv := s.met.batchVars
	setInt(bv, "batches", bs.Batches)
	setInt(bv, "cells_batched", bs.CellsBatched)
	setInt(bv, "fallback_sequential", bs.FallbackSequential)
	root.Set("batch", bv)
	fc := model.ReadCounters()
	fv := s.met.fittedVars
	setInt(fv, "runs", fc.Runs)
	setInt(fv, "fit_iterations", fc.FitIterations)
	setInt(fv, "anchors_simulated", fc.AnchorsSimulated)
	setInt(fv, "cells_fitted", fc.CellsFitted)
	root.Set("fitted", fv)
	cc := compose.ReadCounters()
	cmv := s.met.composeVars
	setInt(cmv, "specs_parsed", cc.SpecsParsed)
	setInt(cmv, "programs_synthesized", cc.Synthesized)
	setInt(cmv, "cache_hits", cc.CacheHits)
	setInt(cmv, "cache_misses", cc.CacheMisses)
	setInt(cmv, "nodes_lowered", cc.NodesLowered)
	setInt(cmv, "preset_hits", cc.PresetHits)
	root.Set("compose", cmv)
	rc := sim.ReadReplayCounters()
	rv := s.met.simVars
	setInt(rv, "replay_mode_event", boolInt(s.svc.Replay() == sim.ReplayEvent))
	setInt(rv, "ff_attempts", int64(rc.Attempts))
	setInt(rv, "fast_forwards", int64(rc.FastForwards))
	setInt(rv, "iterations_skipped", int64(rc.IterationsSkipped))
	setInt(rv, "fallbacks", int64(rc.Fallbacks))
	root.Set("sim", rv)
	if s.store != nil {
		st := s.store.Stats()
		sv := s.met.storeVars
		setInt(sv, "hits", st.Hits)
		setInt(sv, "misses", st.Misses)
		setInt(sv, "evictions", st.Evictions)
		setInt(sv, "corruptions", st.Corruptions)
		setInt(sv, "puts", st.Puts)
		setInt(sv, "put_errors", st.PutErrors)
		setInt(sv, "objects", st.Objects)
		setInt(sv, "bytes", st.Bytes)
		root.Set("store", sv)
	}
	if s.coord != nil {
		ct := s.coord.Stats()
		cl := s.met.clusterVars
		setInt(cl, "role_coordinator", 1)
		setInt(cl, "shards_dispatched", ct.Dispatched)
		setInt(cl, "shards_completed", ct.Completed)
		setInt(cl, "shards_retried", ct.Retried)
		setInt(cl, "shards_local", ct.Local)
		peers := new(expvar.Map).Init()
		for _, p := range ct.Peers {
			pv := new(expvar.Map).Init()
			healthy := int64(0)
			if p.Healthy {
				healthy = 1
			}
			setInt(pv, "healthy", healthy)
			setInt(pv, "dispatched", p.Dispatched)
			setInt(pv, "completed", p.Completed)
			setInt(pv, "failed", p.Failed)
			peers.Set(p.URL, pv)
		}
		cl.Set("peers", peers)
		root.Set("cluster", cl)
	}
	if s.worker != nil {
		wt := s.worker.Stats()
		cl := s.met.clusterVars
		setInt(cl, "role_worker", 1)
		setInt(cl, "shards_accepted", wt.Accepted)
		setInt(cl, "shards_completed", wt.Completed)
		setInt(cl, "shards_failed", wt.Failed)
		setInt(cl, "shards_expired", wt.Expired)
		setInt(cl, "shards_rejected", wt.Rejected)
		setInt(cl, "shards_active", wt.Active)
		root.Set("cluster", cl)
	}
	if s.jobs != nil {
		jt := s.jobs.Stats()
		jv := s.met.jobsVars
		setInt(jv, "queued", jt.Queued)
		setInt(jv, "running", jt.Running)
		setInt(jv, "done", jt.Done)
		setInt(jv, "failed", jt.Failed)
		setInt(jv, "cancelled", jt.Cancelled)
		setInt(jv, "cells_loaded", jt.CellsLoaded)
		setInt(jv, "cells_computed", jt.CellsComputed)
		jv.Set("submitted", s.met.jobsSubmitted)
		root.Set("jobs", jv)
	}

	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n%q: %s", "extrap_serve", root.String())
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, ",\n%q: %s", kv.Key, kv.Value.String())
	})
	fmt.Fprintf(w, "\n}\n")
}

// statusRecorder captures the response status for metrics and logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// statusClass buckets an HTTP status for the responses_by_status map.
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}
