// Package serve exposes the extrapolation pipeline as a JSON-over-HTTP
// service: POST /v1/extrapolate predicts a single {benchmark, size,
// threads, procs, machine} configuration, POST /v1/sweep a processor
// ladder, and GET /v1/benchmarks and /v1/machines enumerate the
// registries. Requests run through the shared experiment engine
// (measurement memo cache + grid runner), so repeated and concurrent
// requests for the same configuration share one measurement and return
// byte-identical bodies.
//
// Operationally the server is load-shaped: compute endpoints pass
// through a bounded in-flight limiter (excess requests queue briefly,
// then are shed with 429), every request carries a deadline threaded
// into the pipeline via context, request/latency/cache counters are
// exported at GET /debug/vars, net/http/pprof can be mounted under
// /debug/pprof/, and shutdown drains in-flight requests gracefully.
// Memory is bounded too: measurements are cached as compact encoded
// bytes, predictions run the streaming pipeline over bounded cursors,
// and a measurement whose encoding exceeds MaxTraceBytes is rejected
// with 413 trace_too_large.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"extrap/internal/benchmarks"
	"extrap/internal/cluster"
	"extrap/internal/compose"
	"extrap/internal/core"
	"extrap/internal/experiments"
	"extrap/internal/jobs"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/model"
	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/store"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// Cluster roles. A solo server (the default) owns its whole pipeline; a
// coordinator partitions sweeps into measured-trace shards and
// dispatches them to worker replicas (falling back to local execution
// when every peer is down); a worker accepts shards on internal
// endpoints and executes them through its own engine. Distributed
// output is byte-identical to solo output: shard results are exact
// virtual-nanosecond integers merged through the same response builder.
const (
	RoleSolo        = "solo"
	RoleCoordinator = "coordinator"
	RoleWorker      = "worker"
)

// Config shapes a Server.
type Config struct {
	// MaxInFlight bounds concurrently executing compute requests
	// (extrapolate and sweep); ≤ 0 selects the default of 32.
	MaxInFlight int
	// QueueWait is how long an excess compute request may wait for a
	// slot before being shed with 429; 0 sheds immediately.
	QueueWait time.Duration
	// RequestTimeout is the per-request pipeline budget; ≤ 0 selects
	// the default of 30s.
	RequestTimeout time.Duration
	// Workers bounds the goroutines a sweep fans its ladder across;
	// ≤ 0 selects GOMAXPROCS.
	Workers int
	// BatchSize > 1 enables batched sweep simulation: grid cells that
	// share a measurement (same benchmark/size/threads under different
	// machine models — multi-machine sweeps and jobs) advance up to
	// BatchSize machine models per pass over the shared translated
	// trace. Responses are byte-identical at any batch size; the knob
	// trades the streaming path's per-cell bounded memory for sweep
	// throughput. ≤ 1 keeps the per-cell streaming path.
	BatchSize int
	// CacheEntries bounds the measurement memo cache (LRU-evicted past
	// the bound) so clients iterating request parameters cannot grow
	// server memory without limit; ≤ 0 selects the default of 256.
	CacheEntries int
	// MaxTraceBytes bounds the encoded size of any single cached
	// measurement: a request whose measurement encodes past the budget
	// is rejected with 413 trace_too_large (and the rejection is
	// memoized — the measurement is deterministic, so it would exceed
	// the budget every time). Cached measurements are held as compact
	// XTRP1 bytes and predictions stream through bounded cursors, so
	// this budget, times CacheEntries, bounds cache memory. 0 selects
	// the default of 256 MiB; < 0 disables the budget.
	MaxTraceBytes int64
	// TraceFormat selects the wire format for cached measurement
	// traces: trace.FormatXTRP2 (the default — loop-compacted, compiled
	// pattern replay) or trace.FormatXTRP1 (flat records). Predictions
	// are byte-identical across formats; the knob exists for rollback
	// and A/B comparison. Artifacts persisted under either format keep
	// loading after a format switch — the cache falls back to the XTRP1
	// key when the current format's artifact is absent.
	TraceFormat trace.Format
	// Replay selects how XTRP2-encoded measurements replay through the
	// simulator: sim.ReplayPattern (the zero default — compiled pattern
	// programs with steady-state fast-forward) or sim.ReplayEvent (flat
	// event-by-event replay). Responses are byte-identical in both
	// modes; the knob exists for rollback and A/B comparison.
	// Fast-forward counters are exported under "sim" in /debug/vars.
	Replay sim.ReplayMode
	// StoreDir, when non-empty, roots the durable artifact store:
	// measurement traces and job cell results persist there (content-
	// addressed, checksummed), the measurement cache reads through to it,
	// and the async jobs API (POST /v1/jobs) is enabled with job state
	// under StoreDir/jobs. Empty disables both — the server is then
	// purely in-memory, and the jobs endpoints answer 503.
	StoreDir string
	// StoreBytes bounds the artifact store's on-disk footprint; least
	// recently used artifacts are evicted past it. ≤ 0 means unlimited.
	StoreBytes int64
	// JobWorkers bounds concurrently executing async jobs; ≤ 0 selects 1.
	// Each job additionally fans its grid cells across Workers.
	JobWorkers int
	// Role selects the cluster role: RoleSolo (or empty — the default),
	// RoleCoordinator, or RoleWorker. See the Role* constants.
	Role string
	// Peers configures the cluster topology. For a coordinator: the
	// worker replicas' base URLs ("http://host:port"), at least one.
	// For a worker: optionally one peer (typically the coordinator) to
	// read measurement artifacts through — a read-through tier behind
	// the local store, so a re-routed shard reuses an already-measured
	// trace instead of re-measuring it. Solo servers take no peers.
	Peers []string
	// ClusterPoll overrides the coordinator's shard poll interval
	// (tests); ≤ 0 selects the cluster default.
	ClusterPoll time.Duration
	// ClusterLeaseMs overrides the shard lease the coordinator requests
	// (tests); 0 selects the cluster default.
	ClusterLeaseMs int
	// EnablePprof mounts net/http/pprof handlers under /debug/pprof/.
	EnablePprof bool
	// ShutdownGrace bounds how long Serve waits for in-flight requests
	// on shutdown; ≤ 0 selects the default of 10s.
	ShutdownGrace time.Duration
	// Logger receives structured request logs; nil selects a text
	// logger on stderr.
	Logger *slog.Logger
}

// Server is the extrapolation service.
type Server struct {
	cfg    Config
	svc    *experiments.Service
	lim    *limiter
	met    *metricsSet
	log    *slog.Logger
	store  *store.Store         // nil unless StoreDir is set
	jobs   *jobs.Manager        // nil unless StoreDir is set
	coord  *cluster.Coordinator // nil unless Role is coordinator
	worker *cluster.Worker      // nil unless Role is worker
}

// New returns a Server with cfg's zero fields defaulted. With a
// StoreDir it opens the durable artifact store (warm-starting from
// whatever a previous process persisted), plugs it behind the
// measurement cache, and starts the async jobs manager — which
// immediately re-enqueues any jobs a previous process left incomplete.
// Call Close when done to stop the background goroutines and persist
// the store index.
func New(cfg Config) (*Server, error) {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 32
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = 10 * time.Second
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.MaxTraceBytes == 0 {
		cfg.MaxTraceBytes = 256 << 20
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	if cfg.TraceFormat == 0 {
		cfg.TraceFormat = trace.FormatXTRP2
	}
	if cfg.Role == "" {
		cfg.Role = RoleSolo
	}
	switch cfg.Role {
	case RoleSolo:
		if len(cfg.Peers) > 0 {
			return nil, fmt.Errorf("serve: a solo server takes no peers (got %d); set Role", len(cfg.Peers))
		}
	case RoleCoordinator:
		if len(cfg.Peers) == 0 {
			return nil, errors.New("serve: a coordinator needs at least one peer")
		}
	case RoleWorker:
		if len(cfg.Peers) > 1 {
			return nil, fmt.Errorf("serve: a worker takes at most one peer to read artifacts through, got %d", len(cfg.Peers))
		}
	default:
		return nil, fmt.Errorf("serve: unknown role %q (want %s, %s, or %s)", cfg.Role, RoleSolo, RoleCoordinator, RoleWorker)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	s := &Server{
		cfg: cfg,
		svc: experiments.NewStreamingService(cfg.Workers, cfg.CacheEntries, cfg.MaxTraceBytes),
		lim: newLimiter(cfg.MaxInFlight, cfg.QueueWait),
		met: newMetricsSet(),
		log: logger,
	}
	s.svc.SetBatchSize(cfg.BatchSize)
	s.svc.SetTraceFormat(cfg.TraceFormat)
	s.svc.SetReplay(cfg.Replay)
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, cfg.StoreBytes)
		if err != nil {
			return nil, err
		}
		s.store = st
	}
	// The measurement cache's durable tier: local store, and for a
	// worker with a peer, a read-through to the peer's artifacts behind
	// it — so a shard re-routed after another worker's death can pull
	// the already-measured trace instead of re-measuring.
	var backend core.TraceBackend
	switch {
	case s.store != nil && cfg.Role == RoleWorker && len(cfg.Peers) == 1:
		backend = &cluster.ChainBackend{
			Local:  s.store,
			Remote: cluster.NewRemoteBackend(cfg.Peers[0], cfg.MaxTraceBytes, nil),
		}
	case s.store != nil:
		backend = s.store
	case cfg.Role == RoleWorker && len(cfg.Peers) == 1:
		backend = cluster.NewRemoteBackend(cfg.Peers[0], cfg.MaxTraceBytes, nil)
	}
	if backend != nil {
		s.svc.SetBackend(backend)
	}
	switch cfg.Role {
	case RoleWorker:
		s.worker = cluster.NewWorker(s.svc, 0)
	case RoleCoordinator:
		coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Peers:        cfg.Peers,
			Service:      s.svc,
			LeaseMs:      cfg.ClusterLeaseMs,
			PollInterval: cfg.ClusterPoll,
		})
		if err != nil {
			if s.store != nil {
				s.store.Close()
			}
			return nil, err
		}
		s.coord = coord
	}
	if s.store != nil {
		jcfg := jobs.Config{
			Dir:     filepath.Join(cfg.StoreDir, "jobs"),
			Service: s.svc,
			Store:   s.store,
			Workers: cfg.JobWorkers,
		}
		if s.coord != nil {
			// A coordinator's async jobs shard exactly like its
			// synchronous sweeps; results still persist per cell in the
			// LOCAL store, so a coordinator SIGKILL resumes with completed
			// shards loaded from disk, not re-dispatched.
			jcfg.Dispatch = s.coord
		}
		mgr, err := jobs.Open(jcfg)
		if err != nil {
			s.store.Close()
			return nil, err
		}
		s.jobs = mgr
	}
	return s, nil
}

// Close stops the jobs manager (running jobs stay persisted as running
// and resume on the next New with the same StoreDir) and closes the
// artifact store, persisting its index. Safe to call on a server
// without a store; not safe to use the server afterwards.
func (s *Server) Close() error {
	if s.jobs != nil {
		s.jobs.Close()
	}
	if s.worker != nil {
		s.worker.Close()
	}
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// Handler returns the service's routes behind the logging/metrics
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/extrapolate", s.limited(s.handleExtrapolate))
	mux.HandleFunc("POST /v1/sweep", s.limited(s.handleSweep))
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /v1/machines", s.handleMachines)
	mux.HandleFunc("GET /v1/patterns", s.handlePatterns)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	if s.worker != nil {
		mux.HandleFunc("POST /v1/internal/shards", s.worker.HandleDispatch)
		mux.HandleFunc("GET /v1/internal/shards/{id}", s.worker.HandlePoll)
	}
	if s.store != nil {
		mux.HandleFunc("GET /v1/internal/artifacts/{keyhash}", cluster.ArtifactHandler(s.store))
	}
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux)
}

// Serve accepts connections on ln until ctx is cancelled, then shuts
// down gracefully: the listener closes, in-flight requests get up to
// ShutdownGrace to finish, and Serve returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.log.Info("shutting down", "grace", s.cfg.ShutdownGrace)
	shctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// instrument wraps the mux with request accounting and structured logs.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		dur := time.Since(start)
		s.met.requests.Add(r.URL.Path, 1)
		s.met.statuses.Add(statusClass(rec.status), 1)
		s.met.latencyUs.Add(dur.Microseconds())
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur_ms", float64(dur.Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

// limited gates a compute handler behind the in-flight limiter and arms
// the per-request deadline that the pipeline observes.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.lim.acquire(r.Context()) {
			s.met.rejected.Add(1)
			// Derive the back-off hint from queue depth against capacity
			// instead of a constant, so clients behind a pile-up spread out.
			w.Header().Set("Retry-After",
				strconv.Itoa(cluster.RetryAfterSeconds(s.lim.backlog(), s.cfg.MaxInFlight)))
			writeError(w, errf(http.StatusTooManyRequests, "overloaded",
				"server at its in-flight limit; retry shortly"))
			return
		}
		defer s.lim.release()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// handleExtrapolate serves POST /v1/extrapolate.
func (s *Server) handleExtrapolate(w http.ResponseWriter, r *http.Request) {
	var req ExtrapolateRequest
	if apiErr := decodeJSON(r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	b, sz, env, procs, apiErr := req.resolve()
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	cfg := env.Config
	cfg.Procs = procs
	pred, err := s.svc.Predict(r.Context(), b, sz, req.Threads, pcxx.ActualSize, cfg)
	if err != nil {
		writeError(w, pipelineError(err))
		return
	}
	resp := ExtrapolateResponse{
		Benchmark:    b.Name(),
		Machine:      env.Name,
		Size:         sz.N,
		Iters:        sz.Iters,
		Threads:      req.Threads,
		Procs:        procs,
		Measured1PMs: pred.Measured1P.Millis(),
		IdealMs:      pred.Ideal.Millis(),
		PredictedMs:  pred.Result.TotalTime.Millis(),
		Barriers:     pred.Result.Barriers,
		Messages:     pred.Result.Net.Messages,
	}
	if pred.Result.TotalTime > 0 {
		resp.Speedup = float64(pred.Measured1P) / float64(pred.Result.TotalTime)
	}
	bd := metrics.ComputeBreakdown(pred.Result)
	resp.Breakdown = BreakdownJSON{
		Compute:     bd.Compute,
		CommWait:    bd.CommWait,
		BarrierWait: bd.BarrierWait,
		Service:     bd.Service,
		CPUWait:     bd.CPUWait,
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSweep serves POST /v1/sweep. A request naming several machines
// runs them as one grid sharing the ladder's measurements — the shape
// where the batched simulation kernel engages — and answers one curve
// per machine; a single-machine request keeps the original response
// shape, byte-identical at any batch size.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if apiErr := decodeJSON(r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	b, sz, envs, ladder, apiErr := req.resolve()
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if req.Mode == modeFitted {
		res, apiErr := s.runFittedSweep(r.Context(), b, sz, envs, ladder)
		if apiErr != nil {
			writeError(w, apiErr)
			return
		}
		if len(req.Machines) == 0 {
			writeJSON(w, http.StatusOK, buildFittedSweepResponse(b.Name(), envs[0].Name, sz.N, sz.Iters, res, 0))
			return
		}
		resp := MultiSweepResponse{
			Benchmark: b.Name(),
			Size:      sz.N,
			Iters:     sz.Iters,
			Mode:      modeFitted,
			Curves:    make([]SweepCurve, len(envs)),
		}
		for i, env := range envs {
			curve := buildFittedSweepResponse(b.Name(), env.Name, sz.N, sz.Iters, res, i)
			resp.Curves[i] = SweepCurve{Machine: env.Name, Points: curve.Points, Fit: curve.Fit}
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	var series [][]metrics.Point
	var err error
	if s.coord != nil {
		// Coordinator: one shard per ladder point, dispatched across the
		// worker replicas and merged as exact integers. The series feeds
		// the same rendering below, so distributed output is byte-identical
		// to a solo server's.
		names := make([]string, len(envs))
		for i, env := range envs {
			names[i] = env.Name
		}
		series, err = s.coord.SweepLadder(r.Context(), b.Name(), workloadBytes(b), sz, names, ladder)
	} else {
		grid := make([]experiments.SweepJob, len(envs))
		for i, env := range envs {
			grid[i] = experiments.SweepJob{
				Name:    b.Name(),
				Size:    sz,
				Factory: b.Factory(sz),
				Mode:    pcxx.ActualSize,
				Cfg:     env.Config,
				Procs:   ladder,
			}
		}
		series, err = s.svc.SweepGrid(r.Context(), grid)
	}
	if err != nil {
		writeError(w, pipelineError(err))
		return
	}
	if len(req.Machines) == 0 {
		writeJSON(w, http.StatusOK, buildSweepResponse(b.Name(), envs[0].Name, sz.N, sz.Iters, series[0]))
		return
	}
	resp := MultiSweepResponse{
		Benchmark: b.Name(),
		Size:      sz.N,
		Iters:     sz.Iters,
		Curves:    make([]SweepCurve, len(envs)),
	}
	for i, env := range envs {
		curve := buildSweepResponse(b.Name(), env.Name, sz.N, sz.Iters, series[i])
		resp.Curves[i] = SweepCurve{Machine: env.Name, Points: curve.Points}
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildSweepResponse renders a sweep series. It is the single rendering
// path for both the synchronous /v1/sweep handler and completed async
// jobs, so a job's result is byte-identical to the synchronous response
// for the same request — the durability contract the store guarantees
// for the numbers extends through the JSON encoding.
func buildSweepResponse(bench, machineName string, size, iters int, points []metrics.Point) SweepResponse {
	speedups := metrics.Speedup(points)
	effs := metrics.Efficiency(points)
	resp := SweepResponse{
		Benchmark: bench,
		Machine:   machineName,
		Size:      size,
		Iters:     iters,
		Points:    make([]SweepPoint, len(points)),
	}
	for i, p := range points {
		resp.Points[i] = SweepPoint{
			Procs:       p.Procs,
			PredictedMs: p.Time.Millis(),
			Speedup:     speedups[i],
			Efficiency:  effs[i],
		}
	}
	return resp
}

// runFittedSweep runs the sparse fitted pipeline: an analytic fit over
// anchors the refinement chooses, each anchor simulated through the same
// executor the exact path uses — the coordinator's shard fan-out when
// clustered (only the sparse anchors are dispatched), the local batch
// executor otherwise. The fit itself is deterministic arithmetic, so
// fitted responses are byte-identical across worker counts, batch sizes,
// and replicas for the same request.
func (s *Server) runFittedSweep(ctx context.Context, b benchmarks.Benchmark, sz benchmarks.Size, envs []machine.Env, ladder []int) (*model.Result, *apiError) {
	var sim model.Simulator
	if s.coord != nil {
		names := make([]string, len(envs))
		for i, env := range envs {
			names[i] = env.Name
		}
		sim = func(ctx context.Context, procs int) ([]vtime.Time, error) {
			return s.coord.RunPoint(ctx, b.Name(), workloadBytes(b), sz, procs, names)
		}
	} else {
		sim = func(ctx context.Context, procs int) ([]vtime.Time, error) {
			cells, err := cluster.ExecuteShard(ctx, s.svc, b, sz, procs, envs)
			if err != nil {
				return nil, err
			}
			ts := make([]vtime.Time, len(cells))
			for i, c := range cells {
				ts[i] = vtime.Time(c.TotalNs)
			}
			return ts, nil
		}
	}
	res, err := model.Run(ctx, ladder, len(envs), sim, model.Options{})
	if err != nil {
		return nil, pipelineError(err)
	}
	return res, nil
}

// buildFittedSweepResponse renders curve ci of a fitted result in the
// sweep response shape, extending the exact renderer's fields with
// per-point provenance ("simulated" anchors vs "fitted" evaluations),
// ± prediction intervals, and the fit summary. The speedup baseline is
// the lowest-procs ladder point, which refinement always anchors, so
// baselines are exact in every fitted response; a non-positive
// predicted time renders speedup and efficiency as 0, mirroring
// metrics.Speedup's division guard.
func buildFittedSweepResponse(bench, machineName string, size, iters int, res *model.Result, ci int) SweepResponse {
	cf := res.Curves[ci]
	resp := SweepResponse{
		Benchmark: bench,
		Machine:   machineName,
		Size:      size,
		Iters:     iters,
		Mode:      modeFitted,
		Points:    make([]SweepPoint, len(cf.Points)),
		Fit: &FitSummary{
			Basis:           model.BasisNames[:len(cf.Coeffs)],
			Coefficients:    cf.Coeffs,
			Anchors:         len(res.Anchors),
			Iterations:      res.Iterations,
			Converged:       res.Converged,
			Tolerance:       res.Tolerance,
			MaxRelResidual:  cf.MaxRelResidual,
			MeanRelResidual: cf.MeanRelResidual,
		},
	}
	base := cf.Points[0]
	for _, p := range cf.Points {
		if p.Procs < base.Procs {
			base = p
		}
	}
	for i, p := range cf.Points {
		sp := SweepPoint{Procs: p.Procs, PredictedMs: p.Value / 1e6}
		iv := p.Interval / 1e6
		sp.IntervalMs = &iv
		if p.Simulated {
			sp.Source = "simulated"
			sp.PredictedMs = p.Exact.Millis()
		} else {
			sp.Source = "fitted"
		}
		if p.Value > 0 && base.Value > 0 {
			sp.Speedup = base.Value / p.Value * float64(base.Procs)
			sp.Efficiency = sp.Speedup / float64(p.Procs)
		}
		resp.Points[i] = sp
	}
	return resp
}

// handleBenchmarks serves GET /v1/benchmarks.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	all := benchmarks.All()
	out := make([]BenchmarkInfo, len(all))
	for i, b := range all {
		d := b.DefaultSize()
		out[i] = BenchmarkInfo{
			Name:         b.Name(),
			Description:  b.Description(),
			DefaultSize:  d.N,
			DefaultIters: d.Iters,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMachines serves GET /v1/machines.
func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	presets := machine.Presets()
	out := make([]MachineInfo, len(presets))
	for i, e := range presets {
		out[i] = MachineInfo{Name: e.Name, Description: e.Description}
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePatterns serves GET /v1/patterns: the compose DSL's pattern
// vocabulary, the built-in workload presets, and the validation
// ceilings — everything a client needs to author a "workload" object
// for the compute endpoints. The listing is static per release, so the
// bytes are stable across processes.
func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	resp := PatternsResponse{
		Patterns: compose.Patterns(),
		Limits: WorkloadLimits{
			MaxSpecBytes:    compose.MaxSpecBytes,
			MaxDepth:        compose.MaxDepth,
			MaxNodes:        compose.MaxNodes,
			MaxFanout:       compose.MaxFanout,
			MaxTasks:        compose.MaxTasks,
			MaxGridCells:    compose.MaxGridCells,
			MaxSteps:        compose.MaxSteps,
			MaxGrain:        compose.MaxGrain,
			MaxMessageBytes: compose.MaxMessageBytes,
			MaxImbalance:    compose.MaxImbalance,
			MaxSize:         compose.MaxScale,
			MaxIters:        compose.MaxSpecIters,
			MaxEvents:       compose.MaxSpecEvents,
		},
	}
	for _, p := range compose.Presets() {
		d := p.DefaultSize()
		resp.Presets = append(resp.Presets, WorkloadPresetInfo{
			Name:         p.Name(),
			Description:  p.Description(),
			Canonical:    p.Workload().Canonical(),
			DefaultSize:  d.N,
			DefaultIters: d.Iters,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// workloadBytes extracts the normalized spec JSON to ship with a shard
// when the program is an ad-hoc composed workload — peers cannot
// resolve it from any registry. Registry benchmarks (presets included)
// return nil: their name suffices.
func workloadBytes(b benchmarks.Benchmark) []byte {
	if w, ok := b.(*compose.Workload); ok {
		return w.SpecJSON()
	}
	return nil
}

// handleHealth serves GET /v1/healthz — a readiness probe for smoke
// tests and load balancers.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request": the client disconnected mid-pipeline, so the abort is theirs,
// not the server's. Using it keeps aborted requests out of the 5xx
// bucket of responses_by_status (they count as 4xx), so server error
// rates reflect server failures only.
const statusClientClosedRequest = 499

// pipelineError maps a pipeline failure to a typed API error: the
// server-side deadline surfaces as 504, a client disconnect as 499, a
// measurement past the trace size budget as 413, and anything else as
// 422 (the input was well-formed but the configuration cannot be
// extrapolated).
func pipelineError(err error) *apiError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return errf(http.StatusGatewayTimeout, "timeout", "request deadline exceeded: %v", err)
	case errors.Is(err, context.Canceled):
		return errf(statusClientClosedRequest, "client_closed_request", "request cancelled by client: %v", err)
	case errors.Is(err, core.ErrTraceTooLarge):
		return errf(http.StatusRequestEntityTooLarge, "trace_too_large", "%v", err)
	}
	return errf(http.StatusUnprocessableEntity, "extrapolation_failed", "%v", err)
}

// writeJSON writes v as the response body with status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, errf(http.StatusInternalServerError, "internal", "encoding response: %v", err))
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

// writeError writes the typed error envelope.
func writeError(w http.ResponseWriter, e *apiError) {
	body, _ := json.Marshal(struct {
		Error *apiError `json:"error"`
	}{e})
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(e.Status)
	w.Write(body)
}
