package serve

// Tests for the fitted sweep mode: provenance and interval fields on
// every point, the ≤ 25% anchor contract on dense ladders, byte
// identity across worker counts and batch sizes, and the guarantee that
// the default exact mode's bytes are untouched by the mode field's
// existence.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"extrap/internal/model"
	"extrap/internal/vtime"
)

// denseLadderJSON renders [1, 2, …, n] as a JSON array.
func denseLadderJSON(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = strconv.Itoa(i + 1)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func fittedSweepBody(machineField string, n int) string {
	return fmt.Sprintf(`{"benchmark":"grid","size":64,"iters":4,%s,"procs":%s,"mode":"fitted"}`,
		machineField, denseLadderJSON(n))
}

// TestFittedSweepSparseAnchors is the fitted mode's cost-and-provenance
// acceptance test: on a 64-point ladder at most 25%% of the cells may be
// truly simulated, every point must declare its provenance and carry an
// interval, and the fit summary must expose the basis and diagnostics.
func TestFittedSweepSparseAnchors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	const ladderLen = 64
	status, body := post(t, ts.URL+"/v1/sweep", fittedSweepBody(`"machine":"cm5"`, ladderLen))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		Mode   string `json:"mode"`
		Points []struct {
			Procs      int      `json:"procs"`
			Predicted  float64  `json:"predicted_ms"`
			Speedup    float64  `json:"speedup"`
			Efficiency float64  `json:"efficiency"`
			Source     string   `json:"source"`
			IntervalMs *float64 `json:"interval_ms"`
		} `json:"points"`
		Fit *FitSummary `json:"fit"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mode != "fitted" {
		t.Errorf("mode = %q, want fitted", resp.Mode)
	}
	if resp.Fit == nil {
		t.Fatal("fitted response has no fit summary")
	}
	if len(resp.Points) != ladderLen {
		t.Fatalf("got %d points, want %d", len(resp.Points), ladderLen)
	}
	simulated := 0
	for _, p := range resp.Points {
		switch p.Source {
		case "simulated":
			simulated++
			if p.IntervalMs == nil || *p.IntervalMs != 0 {
				t.Errorf("p=%d: simulated point interval = %v, want 0", p.Procs, p.IntervalMs)
			}
		case "fitted":
			if p.IntervalMs == nil {
				t.Errorf("p=%d: fitted point missing interval_ms", p.Procs)
			}
		default:
			t.Errorf("p=%d: source = %q, want simulated or fitted", p.Procs, p.Source)
		}
	}
	if max := ladderLen / 4; simulated > max {
		t.Errorf("simulated %d of %d cells, contract allows at most %d", simulated, ladderLen, max)
	}
	if simulated != resp.Fit.Anchors {
		t.Errorf("fit reports %d anchors but %d points are simulated", resp.Fit.Anchors, simulated)
	}
	if got, want := len(resp.Fit.Coefficients), len(resp.Fit.Basis); got != want {
		t.Errorf("fit has %d coefficients for %d basis terms", got, want)
	}
	// The baseline (lowest procs) is always an anchor, so speedup 1 /
	// efficiency 1 there are exact, not fitted.
	if p := resp.Points[0]; p.Procs != 1 || p.Source != "simulated" || p.Speedup != 1 || p.Efficiency != 1 {
		t.Errorf("baseline point = %+v, want simulated p=1 with speedup 1", p)
	}
}

// TestFittedSweepByteIdenticalAcrossWorkersAndBatch: the fit is pure
// deterministic arithmetic over exact anchors, so fitted bodies must
// not depend on worker count or batch size — including the multi-
// machine shape, whose anchors run through the batch kernel.
func TestFittedSweepByteIdenticalAcrossWorkersAndBatch(t *testing.T) {
	configs := []Config{
		{Workers: 1},
		{Workers: 4},
		{Workers: 4, BatchSize: 8},
	}
	for _, mf := range []string{`"machine":"cm5"`, `"machines":["cm5","generic-dm","shared-mem"]`} {
		body := fittedSweepBody(mf, 48)
		var want string
		for i, cfg := range configs {
			_, ts := newTestServer(t, cfg)
			status, got := post(t, ts.URL+"/v1/sweep", body)
			if status != http.StatusOK {
				t.Fatalf("config %d (%s): status %d: %s", i, mf, status, got)
			}
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("config %d (%s): fitted body differs from workers=1 body", i, mf)
			}
		}
	}
}

// TestExactSweepBytesUnchangedByModeField: "mode":"exact" must render
// byte-identically to omitting the field, and exact bodies must not
// leak any fitted-mode fields.
func TestExactSweepBytesUnchangedByModeField(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	base := `{"benchmark":"grid","size":64,"iters":4,"machine":"cm5","procs":[1,2,4,8]}`
	explicit := `{"benchmark":"grid","size":64,"iters":4,"machine":"cm5","procs":[1,2,4,8],"mode":"exact"}`
	status, wantBody := post(t, ts.URL+"/v1/sweep", base)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, wantBody)
	}
	status, gotBody := post(t, ts.URL+"/v1/sweep", explicit)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, gotBody)
	}
	if gotBody != wantBody {
		t.Errorf("mode:exact body differs from default:\n%s\nvs\n%s", gotBody, wantBody)
	}
	for _, field := range []string{`"mode"`, `"source"`, `"interval_ms"`, `"fit"`} {
		if strings.Contains(wantBody, field) {
			t.Errorf("exact body leaks fitted field %s: %s", field, wantBody)
		}
	}
}

// TestFittedModeValidation: unknown modes are rejected; the dense
// ladder ceiling applies only to fitted mode.
func TestFittedModeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, body := post(t, ts.URL+"/v1/sweep",
		`{"benchmark":"grid","machine":"cm5","mode":"approximate"}`)
	if status != http.StatusBadRequest || !strings.Contains(body, `"code":"invalid_mode"`) {
		t.Errorf("unknown mode: status %d body %s, want 400 invalid_mode", status, body)
	}

	// 17 entries: over the exact cap, fine for fitted.
	ladder := denseLadderJSON(17)
	status, body = post(t, ts.URL+"/v1/sweep",
		fmt.Sprintf(`{"benchmark":"grid","size":64,"iters":4,"machine":"cm5","procs":%s}`, ladder))
	if status != http.StatusBadRequest {
		t.Errorf("exact 17-entry ladder: status %d body %s, want 400", status, body)
	}
	status, body = post(t, ts.URL+"/v1/sweep",
		fmt.Sprintf(`{"benchmark":"grid","size":64,"iters":4,"machine":"cm5","procs":%s,"mode":"fitted"}`, ladder))
	if status != http.StatusOK {
		t.Errorf("fitted 17-entry ladder: status %d body %s, want 200", status, body)
	}

	// Past even the fitted cap.
	status, body = post(t, ts.URL+"/v1/sweep",
		fmt.Sprintf(`{"benchmark":"grid","machine":"cm5","procs":%s,"mode":"fitted"}`, denseLadderJSON(maxFittedLadderLen+1)))
	if status != http.StatusBadRequest || !strings.Contains(body, `"code":"invalid_procs"`) {
		t.Errorf("oversized fitted ladder: status %d body %s, want 400 invalid_procs", status, body)
	}
}

// TestFittedRendererGuardsNonPositivePredictions: a fit that dips to a
// non-positive value must render speedup and efficiency as 0 — never
// Inf or NaN, which would make the response unencodable JSON.
func TestFittedRendererGuardsNonPositivePredictions(t *testing.T) {
	res := &model.Result{
		Anchors: []model.Anchor{{Procs: 1, Times: []vtime.Time{1000}}},
		Curves: []model.CurveFit{{
			Points: []model.Point{
				{Procs: 1, Simulated: true, Value: 1000, Exact: 1000},
				{Procs: 2, Value: -50, Interval: 10},
				{Procs: 4, Value: 0, Interval: 10},
			},
			Coeffs: []float64{1000},
		}},
	}
	resp := buildFittedSweepResponse("grid", "cm5", 16, 4, res, 0)
	if resp.Points[0].Speedup != 1 {
		t.Errorf("baseline speedup = %v, want 1", resp.Points[0].Speedup)
	}
	for _, i := range []int{1, 2} {
		if s := resp.Points[i].Speedup; s != 0 {
			t.Errorf("point %d: speedup = %v for non-positive prediction, want 0", i, s)
		}
		if e := resp.Points[i].Efficiency; e != 0 {
			t.Errorf("point %d: efficiency = %v for non-positive prediction, want 0", i, e)
		}
	}
	out, err := json.Marshal(resp)
	if err != nil {
		t.Fatalf("fitted response with non-positive predictions does not encode: %v", err)
	}
	if strings.Contains(string(out), "Inf") || strings.Contains(string(out), "NaN") {
		t.Errorf("encoded response leaks non-finite values: %s", out)
	}
}

// TestFittedDebugVars: a fitted sweep must move the fitted counters at
// /debug/vars — runs, anchors simulated, cells fitted.
func TestFittedDebugVars(t *testing.T) {
	before := model.ReadCounters()
	_, ts := newTestServer(t, Config{Workers: 4})
	status, body := post(t, ts.URL+"/v1/sweep", fittedSweepBody(`"machine":"cm5"`, 32))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	status, vars := get(t, ts.URL+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars status %d", status)
	}
	var doc struct {
		Serve struct {
			Fitted struct {
				Runs             int64 `json:"runs"`
				FitIterations    int64 `json:"fit_iterations"`
				AnchorsSimulated int64 `json:"anchors_simulated"`
				CellsFitted      int64 `json:"cells_fitted"`
			} `json:"fitted"`
		} `json:"extrap_serve"`
	}
	if err := json.Unmarshal([]byte(vars), &doc); err != nil {
		t.Fatalf("decoding /debug/vars: %v", err)
	}
	f := doc.Serve.Fitted
	if f.Runs <= before.Runs || f.AnchorsSimulated <= before.AnchorsSimulated ||
		f.CellsFitted <= before.CellsFitted || f.FitIterations <= before.FitIterations {
		t.Errorf("fitted counters did not all advance: before %+v after %+v", before, f)
	}
}

// TestFittedJobLifecycle: an async fitted job persists only its anchor
// cells, reports work saved through DoneCells < TotalCells, and renders
// a result byte-identical to the synchronous fitted sweep.
func TestFittedJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreDir: t.TempDir(), Workers: 4})

	const ladderLen = 40
	body := fmt.Sprintf(`{"benchmark":"grid","size":64,"iters":4,"machines":["cm5","generic-dm"],"procs":%s,"mode":"fitted"}`,
		denseLadderJSON(ladderLen))
	status, syncBody := post(t, ts.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("sync fitted sweep: status %d: %s", status, syncBody)
	}

	status, subBody := post(t, ts.URL+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, subBody)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal([]byte(subBody), &sub); err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, ts.URL, sub.ID)
	if final.Status != "done" || final.Error != "" {
		t.Fatalf("job finished %+v", final)
	}
	if final.Mode != "fitted" {
		t.Errorf("job mode = %q, want fitted", final.Mode)
	}
	if final.TotalCells != 2*ladderLen {
		t.Errorf("total cells = %d, want %d", final.TotalCells, 2*ladderLen)
	}
	// Work saved: only anchors simulate, so the done count must sit well
	// under the grid — and within the 25% anchor contract.
	if final.DoneCells == 0 || final.DoneCells > final.TotalCells/4 {
		t.Errorf("done cells = %d of %d, want nonzero and at most a quarter", final.DoneCells, final.TotalCells)
	}
	if final.MultiResult == nil {
		t.Fatal("done fitted job has no multi result")
	}
	async, err := json.Marshal(final.MultiResult)
	if err != nil {
		t.Fatal(err)
	}
	if string(async) != strings.TrimSpace(syncBody) {
		t.Errorf("async fitted result differs from sync sweep:\n%s\nvs\n%s", async, strings.TrimSpace(syncBody))
	}
}

// TestFittedJobSurvivesRestart: a done fitted job re-renders its dense
// curve from persisted anchors (model replay) byte-identically on a
// fresh server — and a job rewound to the crash shape (status running,
// no points) re-runs its refinement with anchors loaded from the store
// rather than re-simulated.
func TestFittedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StoreDir: dir, Workers: 2})

	body := fmt.Sprintf(`{"benchmark":"grid","size":64,"iters":4,"machine":"cm5","procs":%s,"mode":"fitted"}`,
		denseLadderJSON(32))
	status, subBody := post(t, ts1.URL+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, subBody)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal([]byte(subBody), &sub); err != nil {
		t.Fatal(err)
	}
	first := waitJob(t, ts1.URL, sub.ID)
	if first.Status != "done" {
		t.Fatalf("job finished %+v", first)
	}
	wantResult, err := json.Marshal(first.Result)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Plain restart: the done job must replay to the same bytes.
	s2, ts2 := newTestServer(t, Config{StoreDir: dir, Workers: 2})
	second := waitJob(t, ts2.URL, sub.ID)
	if second.Status != "done" {
		t.Fatalf("restarted job %+v", second)
	}
	if got, _ := json.Marshal(second.Result); string(got) != string(wantResult) {
		t.Errorf("fitted result changed across restart:\n%s\nvs\n%s", got, wantResult)
	}
	ts2.Close()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-shaped restart: rewind the job file to running-with-no-points
	// (what SIGKILL mid-run leaves). The re-run must finish from stored
	// anchor cells — loaded, not recomputed — and match the first bytes.
	rewriteJobRunning(t, dir, sub.ID)
	s3, ts3 := newTestServer(t, Config{StoreDir: dir, Workers: 2})
	defer func() {
		ts3.Close()
		s3.Close()
	}()
	resumed := waitJob(t, ts3.URL, sub.ID)
	if resumed.Status != "done" {
		t.Fatalf("resumed job %+v", resumed)
	}
	if got, _ := json.Marshal(resumed.Result); string(got) != string(wantResult) {
		t.Errorf("resumed fitted result differs:\n%s\nvs\n%s", got, wantResult)
	}
	if jt := s3.jobs.Stats(); jt.CellsLoaded == 0 || jt.CellsComputed != 0 {
		t.Errorf("fitted resume should load anchors from the store: %+v", jt)
	}
}
