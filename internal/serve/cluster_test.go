package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newWorkerServer starts a worker-role replica and returns its base URL.
func newWorkerServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Role = RoleWorker
	return newTestServer(t, cfg)
}

// newCoordinatorServer starts a coordinator over the given peer URLs
// with a fast poll so tests converge quickly.
func newCoordinatorServer(t *testing.T, cfg Config, peers ...string) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Role = RoleCoordinator
	cfg.Peers = peers
	if cfg.ClusterPoll == 0 {
		cfg.ClusterPoll = 2 * time.Millisecond
	}
	return newTestServer(t, cfg)
}

// sweepBodies is the matrix of sweep requests the distributed tests
// compare against solo: single machine, multi machine, multi point.
var sweepBodies = []string{
	`{"benchmark":"grid","size":16,"iters":4,"machine":"cm5","procs":[1,2,4,8]}`,
	`{"benchmark":"grid","size":16,"iters":4,"machines":["cm5","generic-dm","shared-mem"],"procs":[1,2,3,4,5,6,7,8]}`,
	`{"benchmark":"cyclic","size":12,"iters":3,"machines":["cm5","generic-dm"],"procs":[1,2,4]}`,
}

// TestDistributedSweepByteIdentical is the tentpole acceptance test: a
// coordinator sharding across two worker replicas must answer /v1/sweep
// byte-identically to a solo server, for single- and multi-machine
// requests, and must actually dispatch (not fall back to local).
func TestDistributedSweepByteIdentical(t *testing.T) {
	_, solo := newTestServer(t, Config{Workers: 2})
	_, w1 := newWorkerServer(t, Config{Workers: 2})
	_, w2 := newWorkerServer(t, Config{Workers: 2})
	coordSrv, coord := newCoordinatorServer(t, Config{Workers: 2}, w1.URL, w2.URL)

	for _, body := range sweepBodies {
		status, want := post(t, solo.URL+"/v1/sweep", body)
		if status != http.StatusOK {
			t.Fatalf("solo sweep %s: status %d: %s", body, status, want)
		}
		status, got := post(t, coord.URL+"/v1/sweep", body)
		if status != http.StatusOK {
			t.Fatalf("distributed sweep %s: status %d: %s", body, status, got)
		}
		if got != want {
			t.Errorf("distributed sweep differs from solo for %s:\n%s\nvs\n%s", body, got, want)
		}
	}

	st := coordSrv.coord.Stats()
	if st.Dispatched == 0 {
		t.Error("coordinator dispatched no shards — sweeps ran locally")
	}
	if st.Local != 0 {
		t.Errorf("coordinator fell back to local execution %d times with healthy peers", st.Local)
	}

	// The cluster submap is exported for operators.
	status, vars := get(t, coord.URL+"/debug/vars")
	if status != http.StatusOK || !strings.Contains(vars, `"shards_dispatched"`) {
		t.Errorf("/debug/vars: status %d, want cluster submap with shards_dispatched; body %.200s", status, vars)
	}
}

// flakyProxy fronts a worker and plays dead after accepting its first
// shard: the dispatch succeeds (202), then every subsequent request —
// including the polls for that accepted shard — answers 500. That is a
// worker killed mid-shard as the coordinator observes it.
type flakyProxy struct {
	backend  http.Handler
	accepted atomic.Int64
	dead     atomic.Bool
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.dead.Load() {
		http.Error(w, "worker killed", http.StatusInternalServerError)
		return
	}
	if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/internal/shards") {
		f.accepted.Add(1)
		f.dead.Store(true) // die immediately after this accept
	}
	f.backend.ServeHTTP(w, r)
}

// TestDistributedSweepSurvivesWorkerDeath kills one worker mid-shard —
// it accepts a dispatch, then stops answering polls — and requires the
// coordinator to re-dispatch to the surviving peer and still produce
// byte-identical output.
func TestDistributedSweepSurvivesWorkerDeath(t *testing.T) {
	_, solo := newTestServer(t, Config{Workers: 2})
	w1Srv, err := New(Config{Workers: 2, Role: RoleWorker, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w1Srv.Close() })
	proxy := &flakyProxy{backend: w1Srv.Handler()}
	w1 := httptest.NewServer(proxy)
	t.Cleanup(w1.Close)
	_, w2 := newWorkerServer(t, Config{Workers: 2})
	coordSrv, coord := newCoordinatorServer(t, Config{Workers: 2}, w1.URL, w2.URL)

	body := sweepBodies[1] // 8 ladder points: both peers get shards
	status, want := post(t, solo.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("solo sweep: status %d: %s", status, want)
	}
	status, got := post(t, coord.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("distributed sweep with dying worker: status %d: %s", status, got)
	}
	if got != want {
		t.Errorf("post-failover sweep differs from solo:\n%s\nvs\n%s", got, want)
	}
	if proxy.accepted.Load() == 0 {
		t.Fatal("affinity routing never touched the flaky worker; the test exercised nothing")
	}
	if st := coordSrv.coord.Stats(); st.Retried == 0 {
		t.Errorf("no shard counted as retried after a worker died mid-shard: %+v", st)
	}

	// The same request must keep working — and keep matching solo — now
	// that one peer is marked down.
	if status, again := post(t, coord.URL+"/v1/sweep", body); status != http.StatusOK || again != want {
		t.Errorf("repeat sweep after worker death: status %d, identical=%v", status, again == want)
	}
}

// TestDistributedSweepLocalFallback: with every peer unreachable the
// coordinator executes shards locally and still matches solo output —
// a degraded cluster serves correct answers, not errors.
func TestDistributedSweepLocalFallback(t *testing.T) {
	_, solo := newTestServer(t, Config{Workers: 2})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens here any more
	coordSrv, coord := newCoordinatorServer(t, Config{Workers: 2}, deadURL)

	body := sweepBodies[0]
	_, want := post(t, solo.URL+"/v1/sweep", body)
	status, got := post(t, coord.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("sweep with all peers down: status %d: %s", status, got)
	}
	if got != want {
		t.Errorf("local-fallback sweep differs from solo:\n%s\nvs\n%s", got, want)
	}
	if st := coordSrv.coord.Stats(); st.Local == 0 {
		t.Errorf("expected local fallback executions, got %+v", st)
	}
}

// TestDistributedJobsByteIdentical: async jobs on a coordinator shard
// across workers, and their persisted results render byte-identically
// to a solo server's job for the same spec.
func TestDistributedJobsByteIdentical(t *testing.T) {
	_, w1 := newWorkerServer(t, Config{Workers: 2})
	_, w2 := newWorkerServer(t, Config{Workers: 2})
	_, coord := newCoordinatorServer(t,
		Config{Workers: 2, StoreDir: t.TempDir()}, w1.URL, w2.URL)
	_, solo := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})

	spec := `{"benchmark":"grid","size":16,"iters":4,"machines":["cm5","generic-dm"],"procs":[1,2,4]}`
	soloJob := waitJob(t, solo.URL, submitJob(t, solo.URL, spec))
	distJob := waitJob(t, coord.URL, submitJob(t, coord.URL, spec))
	if soloJob.Status != "done" {
		t.Fatalf("solo job: %+v", soloJob)
	}
	if distJob.Status != "done" {
		t.Fatalf("distributed job: %+v", distJob)
	}
	if got, want := resultJSON(t, distJob), resultJSON(t, soloJob); got != want {
		t.Errorf("distributed job result differs from solo:\n%s\nvs\n%s", got, want)
	}
}

// submitJob posts a job spec and returns the accepted ID.
func submitJob(t *testing.T, base, spec string) string {
	t.Helper()
	status, body := post(t, base+"/v1/jobs", spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit on %s: status %d: %s", base, status, body)
	}
	var resp JobSubmitResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil || resp.ID == "" {
		t.Fatalf("submit on %s: bad body %q (%v)", base, body, err)
	}
	return resp.ID
}

// resultJSON renders a done job's sweep result (single- or
// multi-machine) as JSON for byte comparison. Artifacts are excluded
// deliberately: WHERE measurement traces persisted differs between a
// solo server (locally) and a coordinator (on its workers) — the
// numbers must not.
func resultJSON(t *testing.T, jr JobStatusResponse) string {
	t.Helper()
	var v any = jr.Result
	if jr.MultiResult != nil {
		v = jr.MultiResult
	}
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// rewriteJobRunning rewrites a persisted job file to the state a
// coordinator SIGKILLed mid-run leaves behind: status running, no
// completed points recorded in the file (cell results live only in the
// artifact store).
func rewriteJobRunning(t *testing.T, storeDir, id string) {
	t.Helper()
	path := filepath.Join(storeDir, "jobs", id+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var jf map[string]any
	if err := json.Unmarshal(raw, &jf); err != nil {
		t.Fatal(err)
	}
	jf["status"] = "running"
	jf["done_cells"] = 0
	delete(jf, "points")
	out, err := json.Marshal(jf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDistributedJobResumesFromPersistedShards: a coordinator killed
// (crash-shaped Close) mid-job resumes on restart with completed cells
// loaded from its local store — even with every worker peer now dead,
// proving resumed cells are NOT re-dispatched.
func TestDistributedJobResumesFromPersistedShards(t *testing.T) {
	dir := t.TempDir()
	_, w1 := newWorkerServer(t, Config{Workers: 2})
	srv1, err := New(Config{Workers: 2, StoreDir: dir, Role: RoleCoordinator,
		Peers: []string{w1.URL}, ClusterPoll: 2 * time.Millisecond, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	spec := `{"benchmark":"grid","size":16,"iters":4,"machines":["cm5","generic-dm"],"procs":[1,2,4]}`
	id := submitJob(t, ts1.URL, spec)
	done := waitJob(t, ts1.URL, id)
	if done.Status != "done" {
		t.Fatalf("first run: %+v", done)
	}
	wantResult := resultJSON(t, done)
	ts1.Close()
	srv1.Close()

	// Rewrite the job file as incomplete, as a SIGKILL mid-run would have
	// left it: status running, no points. Cell records remain in the
	// store, so the restart must restore every cell from disk.
	rewriteJobRunning(t, dir, id)

	// Restart with the worker peer gone: only the store can finish this.
	deadPeer := w1.URL // keep the URL; the server behind it stays up but
	// the point is cells must load, not re-dispatch — assert via stats.
	srv2, err := New(Config{Workers: 2, StoreDir: dir, Role: RoleCoordinator,
		Peers: []string{deadPeer}, ClusterPoll: 2 * time.Millisecond, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)

	resumed := waitJob(t, ts2.URL, id)
	if resumed.Status != "done" {
		t.Fatalf("resumed job: %+v", resumed)
	}
	if got := resultJSON(t, resumed); got != wantResult {
		t.Errorf("resumed result differs:\n%s\nvs\n%s", got, wantResult)
	}
	if st := srv2.coord.Stats(); st.Dispatched != 0 || st.Local != 0 {
		t.Errorf("resume re-executed persisted cells: %+v", st)
	}
	if jt := srv2.jobs.Stats(); jt.CellsLoaded == 0 || jt.CellsComputed != 0 {
		t.Errorf("resume should load every cell from the store: %+v", jt)
	}
}

// TestSoloServerMountsNoClusterEndpoints: the internal shard endpoints
// exist only on workers; a solo (or coordinator) replica answers 404.
func TestSoloServerMountsNoClusterEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _ := post(t, ts.URL+"/v1/internal/shards",
		`{"benchmark":"grid","size":16,"iters":4,"threads":2,"machines":["cm5"]}`)
	if status != http.StatusNotFound {
		t.Errorf("solo dispatch: status %d, want 404", status)
	}
	status, _ = get(t, ts.URL+"/v1/internal/shards/s-00")
	if status != http.StatusNotFound {
		t.Errorf("solo poll: status %d, want 404", status)
	}
	status, _ = get(t, ts.URL+"/v1/internal/artifacts/"+strings.Repeat("ab", 32))
	if status != http.StatusNotFound {
		t.Errorf("storeless artifact fetch: status %d, want 404", status)
	}
}

// TestClusterRoleValidation: misconfigured topologies fail at startup,
// not at first request.
func TestClusterRoleValidation(t *testing.T) {
	cases := []Config{
		{Role: "conductor"},
		{Role: RoleCoordinator}, // no peers
		{Role: RoleSolo, Peers: []string{"http://127.0.0.1:1"}},     // solo with peers
		{Role: RoleWorker, Peers: []string{"http://a", "http://b"}}, // too many
	}
	for i, cfg := range cases {
		cfg.Logger = discardLogger()
		if s, err := New(cfg); err == nil {
			s.Close()
			t.Errorf("case %d (%+v): New accepted an invalid topology", i, cfg)
		}
	}
}

// TestDistributedConcurrentSweeps: concurrent identical and distinct
// sweeps through the coordinator all match their solo bytes — affinity
// routing plus worker single-flight must not corrupt anything under
// load (this is the -race half of the acceptance test).
func TestDistributedConcurrentSweeps(t *testing.T) {
	_, solo := newTestServer(t, Config{Workers: 2})
	_, w1 := newWorkerServer(t, Config{Workers: 2})
	_, w2 := newWorkerServer(t, Config{Workers: 2})
	_, coord := newCoordinatorServer(t, Config{Workers: 2, MaxInFlight: 64}, w1.URL, w2.URL)

	want := make(map[string]string, len(sweepBodies))
	for _, body := range sweepBodies {
		_, want[body] = post(t, solo.URL+"/v1/sweep", body)
	}
	const clients = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		body := sweepBodies[i%len(sweepBodies)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(coord.URL+"/v1/sweep", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			got, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, got)
				return
			}
			if string(got) != want[body] {
				errs <- fmt.Errorf("concurrent distributed sweep differs for %s", body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestDistributedFittedSweepByteIdentical: fitted mode on a coordinator
// shards only the sparse anchor simulations across workers, and the
// rendered body — fit summary, provenance, intervals — must match the
// solo server's bytes exactly.
func TestDistributedFittedSweepByteIdentical(t *testing.T) {
	_, solo := newTestServer(t, Config{Workers: 2})
	_, w1 := newWorkerServer(t, Config{Workers: 2})
	_, w2 := newWorkerServer(t, Config{Workers: 2})
	coordSrv, coord := newCoordinatorServer(t, Config{Workers: 2}, w1.URL, w2.URL)

	for _, body := range []string{
		fittedSweepBody(`"machine":"cm5"`, 40),
		fittedSweepBody(`"machines":["cm5","generic-dm"]`, 40),
	} {
		status, want := post(t, solo.URL+"/v1/sweep", body)
		if status != http.StatusOK {
			t.Fatalf("solo fitted sweep: status %d: %s", status, want)
		}
		status, got := post(t, coord.URL+"/v1/sweep", body)
		if status != http.StatusOK {
			t.Fatalf("distributed fitted sweep: status %d: %s", status, got)
		}
		if got != want {
			t.Errorf("distributed fitted sweep differs from solo for %s:\n%s\nvs\n%s", body, got, want)
		}
	}
	st := coordSrv.coord.Stats()
	if st.Dispatched == 0 {
		t.Error("fitted sweeps dispatched no shards — anchors ran locally")
	}
	if st.Local != 0 {
		t.Errorf("coordinator fell back to local execution %d times with healthy peers", st.Local)
	}
}
