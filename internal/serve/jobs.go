package serve

// The async jobs API: sweeps that outlive the request — and the server
// process. POST /v1/jobs validates exactly like POST /v1/sweep but
// returns 202 with a job ID immediately; the jobs manager executes the
// grid in the background, persisting each cell's result to the artifact
// store as it lands. GET /v1/jobs/{id} reports progress and, once done,
// the result — byte-identical to what the synchronous endpoint would
// have returned. DELETE cancels. A server restarted on the same
// -store-dir resumes incomplete jobs from their persisted partials.
//
// The endpoints require the durable store (-store-dir): an async job
// whose results vanish with the process would be a slower /v1/sweep
// with extra steps, so without a store they answer 503 store_disabled.

import (
	"encoding/json"
	"net/http"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/experiments"
	"extrap/internal/jobs"
	"extrap/internal/model"
	"extrap/internal/pcxx"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// JobSubmitResponse is the 202 body: the ID to poll.
type JobSubmitResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// JobStatusResponse reports one job's progress. Exactly one of Machine
// / Machines is set, mirroring the submitted request; the matching
// result field (Result for single-machine, MultiResult for
// multi-machine) is present only once Status is "done".
type JobStatusResponse struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Benchmark string `json:"benchmark"`
	// Workload is the composed-workload spec the job measures, when it
	// was submitted with one; Benchmark then holds the derived content
	// name ("wl:<hash>").
	Workload json.RawMessage `json:"workload,omitempty"`
	Machine  string          `json:"machine,omitempty"`
	Machines []string        `json:"machines,omitempty"`
	Size     int             `json:"size"`
	Iters    int             `json:"iters"`
	Procs    []int           `json:"procs"`
	// Mode is "fitted" for fitted jobs; omitted for exact jobs. A done
	// fitted job's DoneCells stays at anchors × machines — the cells
	// actually simulated — while TotalCells is the full grid, so the
	// gap is the work the fit saved.
	Mode        string              `json:"mode,omitempty"`
	TotalCells  int                 `json:"total_cells"`
	DoneCells   int                 `json:"done_cells"`
	Error       string              `json:"error,omitempty"`
	Result      *SweepResponse      `json:"result,omitempty"`
	MultiResult *MultiSweepResponse `json:"multi_result,omitempty"`
	// Artifacts lists the job's measurement traces resident in the
	// durable store — one per ladder point whose trace has been
	// persisted — with the wire format and encoded payload size of
	// each, so operators can see what a sweep actually costs on disk.
	Artifacts []JobArtifact `json:"artifacts,omitempty"`
}

// JobArtifact describes one persisted measurement trace of a job.
type JobArtifact struct {
	// Procs is the ladder point (the measured thread count).
	Procs int `json:"procs"`
	// Format is the artifact's wire format ("xtrp1" or "xtrp2").
	Format string `json:"format"`
	// EncodedBytes is the encoded payload size in the store.
	EncodedBytes int64 `json:"encoded_bytes"`
}

// requireJobs gates the jobs endpoints on the durable store.
func (s *Server) requireJobs(w http.ResponseWriter) bool {
	if s.jobs == nil {
		writeError(w, errf(http.StatusServiceUnavailable, "store_disabled",
			"async jobs need the durable store; start the server with -store-dir"))
		return false
	}
	return true
}

// handleJobSubmit serves POST /v1/jobs. The body is a SweepRequest —
// the same shape, validation, and ceilings as POST /v1/sweep.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.requireJobs(w) {
		return
	}
	var req SweepRequest
	if apiErr := decodeJSON(r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	b, sz, envs, ladder, apiErr := req.resolve()
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	spec := jobs.Spec{
		Benchmark: b.Name(),
		// For a composed workload, the normalized spec JSON persists with
		// the job (Benchmark then holds the derived wl:<hash> name); nil
		// for registry benchmarks, presets included.
		Workload: workloadBytes(b),
		Size:     sz.N,
		Iters:    sz.Iters,
		Procs:    ladder,
		Mode:     req.Mode, // resolve normalized: "" (exact) or "fitted"
	}
	if len(req.Machines) == 0 {
		spec.Machine = envs[0].Name
	} else {
		spec.Machines = make([]string, len(envs))
		for i, env := range envs {
			spec.Machines[i] = env.Name
		}
	}
	id, err := s.jobs.Submit(spec)
	if err != nil {
		writeError(w, errf(http.StatusServiceUnavailable, "job_rejected", "%v", err))
		return
	}
	s.met.jobsSubmitted.Add(1)
	writeJSON(w, http.StatusAccepted, JobSubmitResponse{ID: id, Status: string(jobs.StatusQueued)})
}

// jobSummary renders a job snapshot's progress fields — everything but
// the results.
func jobSummary(snap jobs.Snapshot) JobStatusResponse {
	return JobStatusResponse{
		ID:         snap.ID,
		Status:     string(snap.Status),
		Benchmark:  snap.Spec.Benchmark,
		Workload:   snap.Spec.Workload,
		Machine:    snap.Spec.Machine,
		Machines:   snap.Spec.Machines,
		Size:       snap.Spec.Size,
		Iters:      snap.Spec.Iters,
		Procs:      snap.Spec.Procs,
		Mode:       snap.Spec.Mode,
		TotalCells: snap.TotalCells,
		DoneCells:  snap.DoneCells,
		Error:      snap.Error,
	}
}

// jobResponse renders one job snapshot. Exact results go through
// buildSweepResponse; fitted results re-derive the dense curve from the
// persisted anchors via model.Replay and render through the fitted
// builder — both shared with the synchronous /v1/sweep handler, so a
// completed job's body is byte-identical to the synchronous response
// for the same request, across restarts and replicas. A fitted job
// whose persisted anchors no longer replay (store corruption or
// tampering) answers 500 rather than serving a curve that cannot be
// trusted.
func jobResponse(snap jobs.Snapshot) (JobStatusResponse, *apiError) {
	resp := jobSummary(snap)
	if snap.Status != jobs.StatusDone {
		return resp, nil
	}
	if snap.Spec.Mode == jobs.ModeFitted {
		return fittedJobResponse(snap, resp)
	}
	if len(snap.Spec.Machines) == 0 {
		r := buildSweepResponse(snap.Spec.Benchmark, snap.Spec.Machine, snap.Spec.Size, snap.Spec.Iters, snap.Points)
		resp.Result = &r
		return resp, nil
	}
	mr := MultiSweepResponse{
		Benchmark: snap.Spec.Benchmark,
		Size:      snap.Spec.Size,
		Iters:     snap.Spec.Iters,
		Curves:    make([]SweepCurve, len(snap.Spec.Machines)),
	}
	for i, name := range snap.Spec.Machines {
		curve := buildSweepResponse(snap.Spec.Benchmark, name, snap.Spec.Size, snap.Spec.Iters, snap.Curves[i])
		mr.Curves[i] = SweepCurve{Machine: name, Points: curve.Points}
	}
	resp.MultiResult = &mr
	return resp, nil
}

// fittedJobResponse re-derives a done fitted job's dense curves from
// its persisted anchors. Snapshot curves hold the anchors machine-major
// with identical processor sequences per machine, which is exactly the
// transpose of model.Anchor's per-point layout.
func fittedJobResponse(snap jobs.Snapshot, resp JobStatusResponse) (JobStatusResponse, *apiError) {
	anchors := make([]model.Anchor, len(snap.Curves[0]))
	for ai := range anchors {
		times := make([]vtime.Time, len(snap.Curves))
		for mi := range snap.Curves {
			times[mi] = snap.Curves[mi][ai].Time
		}
		anchors[ai] = model.Anchor{Procs: snap.Curves[0][ai].Procs, Times: times}
	}
	res, err := model.Replay(snap.Spec.Procs, anchors, model.Options{})
	if err != nil {
		return resp, errf(http.StatusInternalServerError, "fitted_replay_failed",
			"job %s: persisted anchors do not replay: %v", snap.ID, err)
	}
	if len(snap.Spec.Machines) == 0 {
		r := buildFittedSweepResponse(snap.Spec.Benchmark, snap.Spec.Machine, snap.Spec.Size, snap.Spec.Iters, res, 0)
		resp.Result = &r
		return resp, nil
	}
	mr := MultiSweepResponse{
		Benchmark: snap.Spec.Benchmark,
		Size:      snap.Spec.Size,
		Iters:     snap.Spec.Iters,
		Mode:      modeFitted,
		Curves:    make([]SweepCurve, len(snap.Spec.Machines)),
	}
	for i, name := range snap.Spec.Machines {
		curve := buildFittedSweepResponse(snap.Spec.Benchmark, name, snap.Spec.Size, snap.Spec.Iters, res, i)
		mr.Curves[i] = SweepCurve{Machine: name, Points: curve.Points, Fit: curve.Fit}
	}
	resp.MultiResult = &mr
	return resp, nil
}

// jobArtifacts reports the job's measurement traces resident in the
// durable store: one entry per ladder point whose trace has been
// persisted, trying the server's configured format first and the XTRP1
// key as fallback (a store written before a format migration). The
// measurement is shared across machines, so the list has one entry per
// proc count regardless of how many curves the job sweeps.
func (s *Server) jobArtifacts(snap jobs.Snapshot) []JobArtifact {
	sz := benchmarks.Size{N: snap.Spec.Size, Iters: snap.Spec.Iters}
	var out []JobArtifact
	for _, n := range snap.Spec.Procs {
		key := experiments.MeasurementKey(snap.Spec.Benchmark, sz, n, core.MeasureOptions{SizeMode: pcxx.ActualSize})
		for _, f := range []trace.Format{s.cfg.TraceFormat, trace.FormatXTRP1} {
			if bytes, ok := s.store.Size(key.CanonicalFormat(f)); ok {
				out = append(out, JobArtifact{Procs: n, Format: f.String(), EncodedBytes: bytes})
				break
			}
		}
	}
	return out
}

// handleJobGet serves GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireJobs(w) {
		return
	}
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, errf(http.StatusNotFound, "unknown_job", "no job %q", r.PathValue("id")))
		return
	}
	resp, apiErr := jobResponse(snap)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	resp.Artifacts = s.jobArtifacts(snap)
	writeJSON(w, http.StatusOK, resp)
}

// handleJobList serves GET /v1/jobs: all known jobs, without results
// (poll GET /v1/jobs/{id} for a specific job's result).
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if !s.requireJobs(w) {
		return
	}
	snaps := s.jobs.List()
	out := make([]JobStatusResponse, len(snaps))
	for i, snap := range snaps {
		// Results are not listed (poll the job for them), so the summary
		// suffices — no result rendering, no replay.
		out[i] = jobSummary(snap)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleJobCancel serves DELETE /v1/jobs/{id}. Cancelling a terminal
// job is a no-op that reports the final state.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if !s.requireJobs(w) {
		return
	}
	snap, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, errf(http.StatusNotFound, "unknown_job", "no job %q", r.PathValue("id")))
		return
	}
	resp, apiErr := jobResponse(snap)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
