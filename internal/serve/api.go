package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"extrap/internal/benchmarks"
	"extrap/internal/compose"
	"extrap/internal/machine"
	"extrap/internal/model"
)

// Request ceilings: the API bounds per-request work up front so a single
// request cannot monopolize the server, and the pipeline additionally
// honors the request deadline at safe points in every stage (including
// the measurement), so even a request that passes validation cannot hold
// an in-flight slot past RequestTimeout. The per-field limits are
// generous — well past the paper's largest configurations — but their
// product is not: maxWorkUnits bounds size × iters × threads combined,
// because each field at its individual ceiling would admit ~2^40-unit
// measurements.
const (
	maxThreads   = 256
	maxSize      = 1 << 16
	maxIters     = 1 << 16
	maxWorkUnits = 1 << 26
	maxLadderLen = 16
	maxBodyBytes = 1 << 20
	// maxFittedLadderLen is the ladder ceiling for fitted-mode sweeps.
	// Fitted sweeps simulate only a sparse anchor subset (at most
	// model.AnchorBudget points), so the dense ladder can be far longer
	// than the exact mode's without exceeding the same work budget —
	// which the fitted budget check enforces against the worst-case
	// anchor set, not the full ladder.
	maxFittedLadderLen = 256
)

// Sweep modes. The zero value and "exact" both select the exact path —
// every ladder cell truly simulated, responses byte-identical to every
// release since the sweep endpoint existed. "fitted" simulates a sparse
// anchor set and answers the rest of the ladder from an analytic
// least-squares fit, with per-point provenance and uncertainty.
const (
	modeExact  = "exact"
	modeFitted = "fitted"
)

// workUnits is the validation proxy for one measurement's cost. A
// benchmark that can estimate its own work (composed workloads know
// their event totals) is asked; everything else uses the historical
// proxy of problem size × iterations (at least one) × measured threads.
func workUnits(b benchmarks.Benchmark, sz benchmarks.Size, threads int) int64 {
	if we, ok := b.(benchmarks.WorkEstimator); ok {
		return we.WorkUnits(sz, threads)
	}
	iters := sz.Iters
	if iters < 1 {
		iters = 1
	}
	return int64(sz.N) * int64(iters) * int64(threads)
}

// checkWorkBudget rejects configurations whose combined work product
// exceeds the per-request budget.
func checkWorkBudget(b benchmarks.Benchmark, sz benchmarks.Size, threads int) *apiError {
	if w := workUnits(b, sz, threads); w > maxWorkUnits {
		return errf(http.StatusBadRequest, "work_budget_exceeded",
			"requested work %d exceeds the per-request budget %d; reduce size, iters, or threads",
			w, int64(maxWorkUnits))
	}
	return nil
}

// ExtrapolateRequest asks for one prediction: measure benchmark at
// threads threads, translate, and simulate on machine with procs
// processors.
type ExtrapolateRequest struct {
	// Benchmark is a suite benchmark name (see GET /v1/benchmarks).
	// Exactly one of Benchmark / Workload must be set.
	Benchmark string `json:"benchmark,omitempty"`
	// Workload is an inline composed-workload spec — a nested tree of
	// parallel patterns synthesized into a program on the fly (see
	// GET /v1/patterns for the grammar and ceilings). The response's
	// benchmark field reports the workload's derived content name
	// ("wl:<hash>").
	Workload json.RawMessage `json:"workload,omitempty"`
	// Size is the problem dimension N; 0 selects the benchmark default.
	Size int `json:"size,omitempty"`
	// Iters is the iteration count; 0 selects the benchmark default.
	Iters int `json:"iters,omitempty"`
	// Threads is the measured thread count (≥ 1).
	Threads int `json:"threads"`
	// Procs is the simulated processor count; 0 means one per thread.
	// Must divide Threads.
	Procs int `json:"procs,omitempty"`
	// Machine is a target environment preset name (see GET /v1/machines).
	Machine string `json:"machine"`
}

// maxSweepMachines bounds the machine list of a multi-machine sweep.
// Machines multiply only simulation work — every machine shares the
// ladder's measurements — so the bound is about response size, not the
// work budget.
const maxSweepMachines = 16

// SweepRequest asks for a processor-scaling ladder: each ladder point n
// is measured with n threads and simulated on n processors of the
// target machine(s).
type SweepRequest struct {
	// Benchmark / Workload select the program, exactly as on
	// POST /v1/extrapolate: one of the two must be set.
	Benchmark string          `json:"benchmark,omitempty"`
	Workload  json.RawMessage `json:"workload,omitempty"`
	Size      int             `json:"size,omitempty"`
	Iters     int             `json:"iters,omitempty"`
	// Machine names a single target environment; the response is a
	// single curve (SweepResponse).
	Machine string `json:"machine,omitempty"`
	// Machines names several target environments to sweep against the
	// same measurements — the "measure once, ask many what-if questions"
	// shape, where the server's batched simulation kernel engages. The
	// response is one curve per machine (MultiSweepResponse). Exactly
	// one of Machine / Machines must be set.
	Machines []string `json:"machines,omitempty"`
	// Procs is the ladder; empty selects the paper's {1,2,4,8,16,32}.
	Procs []int `json:"procs,omitempty"`
	// Mode selects how ladder cells are produced: "" or "exact" (the
	// default) simulates every cell; "fitted" simulates a sparse anchor
	// subset and fits an analytic scaling curve over it, answering the
	// remaining cells from the fit with per-point provenance and ±
	// uncertainty intervals. Fitted ladders may hold up to
	// maxFittedLadderLen entries.
	Mode string `json:"mode,omitempty"`
}

// BreakdownJSON is the predicted activity share of total thread time.
type BreakdownJSON struct {
	Compute     float64 `json:"compute"`
	CommWait    float64 `json:"comm_wait"`
	BarrierWait float64 `json:"barrier_wait"`
	Service     float64 `json:"service"`
	CPUWait     float64 `json:"cpu_wait"`
}

// ExtrapolateResponse is one prediction. Every field is derived from the
// deterministic pipeline, so identical requests produce byte-identical
// responses regardless of concurrency or cache state.
type ExtrapolateResponse struct {
	Benchmark    string        `json:"benchmark"`
	Machine      string        `json:"machine"`
	Size         int           `json:"size"`
	Iters        int           `json:"iters"`
	Threads      int           `json:"threads"`
	Procs        int           `json:"procs"`
	Measured1PMs float64       `json:"measured_1p_ms"`
	IdealMs      float64       `json:"ideal_ms"`
	PredictedMs  float64       `json:"predicted_ms"`
	Speedup      float64       `json:"speedup"`
	Barriers     int           `json:"barriers"`
	Messages     int64         `json:"messages"`
	Breakdown    BreakdownJSON `json:"breakdown"`
}

// SweepPoint is one ladder entry of a sweep response. Source and
// IntervalMs are present only in fitted-mode responses — exact sweeps
// omit them, keeping exact bytes identical to every prior release.
type SweepPoint struct {
	Procs       int     `json:"procs"`
	PredictedMs float64 `json:"predicted_ms"`
	Speedup     float64 `json:"speedup"`
	Efficiency  float64 `json:"efficiency"`
	// Source is the cell's provenance in a fitted sweep: "simulated"
	// (an anchor — the value is the exact pipeline output) or "fitted"
	// (the value is the analytic fit's evaluation).
	Source string `json:"source,omitempty"`
	// IntervalMs is the ± half-width of the fit's ~95% prediction band
	// in milliseconds; 0 for simulated anchors. A pointer so fitted
	// responses always carry the field (including the anchors' exact
	// 0) while exact responses omit it entirely.
	IntervalMs *float64 `json:"interval_ms,omitempty"`
}

// FitSummary reports a fitted curve's diagnostics: the basis it was fit
// over, the solved coefficients, and how the residual-driven refinement
// ended.
type FitSummary struct {
	// Basis names the fitted terms; Coefficients[i] multiplies Basis[i].
	Basis        []string  `json:"basis"`
	Coefficients []float64 `json:"coefficients"`
	// Anchors is how many ladder points were truly simulated.
	Anchors int `json:"anchors"`
	// Iterations counts fit rounds; Converged reports whether the
	// relative-residual tolerance was met (vs. exhausting the anchor
	// budget).
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	Tolerance  float64 `json:"tolerance"`
	// MaxRelResidual / MeanRelResidual summarize how well the final fit
	// reproduces its own anchors, relative to each anchor's value.
	MaxRelResidual  float64 `json:"max_rel_residual"`
	MeanRelResidual float64 `json:"mean_rel_residual"`
}

// SweepResponse is a processor-scaling series. Mode and Fit appear only
// in fitted-mode responses.
type SweepResponse struct {
	Benchmark string       `json:"benchmark"`
	Machine   string       `json:"machine"`
	Size      int          `json:"size"`
	Iters     int          `json:"iters"`
	Mode      string       `json:"mode,omitempty"`
	Points    []SweepPoint `json:"points"`
	Fit       *FitSummary  `json:"fit,omitempty"`
}

// SweepCurve is one machine's series of a multi-machine sweep.
type SweepCurve struct {
	Machine string       `json:"machine"`
	Points  []SweepPoint `json:"points"`
	Fit     *FitSummary  `json:"fit,omitempty"`
}

// MultiSweepResponse answers a sweep over several machines: one curve
// per requested machine, in request order, all derived from the same
// measurements. Each curve's points are byte-identical to the Points a
// single-machine sweep of that machine returns.
type MultiSweepResponse struct {
	Benchmark string       `json:"benchmark"`
	Size      int          `json:"size"`
	Iters     int          `json:"iters"`
	Mode      string       `json:"mode,omitempty"`
	Curves    []SweepCurve `json:"curves"`
}

// BenchmarkInfo describes one suite benchmark in GET /v1/benchmarks.
type BenchmarkInfo struct {
	Name         string `json:"name"`
	Description  string `json:"description"`
	DefaultSize  int    `json:"default_size"`
	DefaultIters int    `json:"default_iters"`
}

// MachineInfo describes one environment preset in GET /v1/machines.
type MachineInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// PatternsResponse answers GET /v1/patterns: the compose DSL's pattern
// vocabulary, the built-in workload presets (usable anywhere a
// benchmark name is), and the spec ceilings a workload must stay under.
type PatternsResponse struct {
	Patterns []compose.PatternInfo `json:"patterns"`
	Presets  []WorkloadPresetInfo  `json:"presets"`
	Limits   WorkloadLimits        `json:"limits"`
}

// WorkloadPresetInfo describes one registered workload preset,
// including the canonical wl/v1 encoding its content addresses derive
// from — so an operator can see exactly which composed tree a preset
// name resolves to.
type WorkloadPresetInfo struct {
	Name         string `json:"name"`
	Description  string `json:"description"`
	Canonical    string `json:"canonical"`
	DefaultSize  int    `json:"default_size"`
	DefaultIters int    `json:"default_iters"`
}

// WorkloadLimits publishes the compose package's validation ceilings.
type WorkloadLimits struct {
	MaxSpecBytes    int     `json:"max_spec_bytes"`
	MaxDepth        int     `json:"max_depth"`
	MaxNodes        int     `json:"max_nodes"`
	MaxFanout       int     `json:"max_fanout"`
	MaxTasks        int     `json:"max_tasks"`
	MaxGridCells    int     `json:"max_grid_cells"`
	MaxSteps        int     `json:"max_steps"`
	MaxGrain        int     `json:"max_grain"`
	MaxMessageBytes int     `json:"max_message_bytes"`
	MaxImbalance    float64 `json:"max_imbalance"`
	MaxSize         int     `json:"max_size"`
	MaxIters        int     `json:"max_iters"`
	MaxEvents       int64   `json:"max_events"`
}

// apiError is the typed error envelope every failure returns:
// {"error":{"code":..., "message":...}} with the matching HTTP status.
type apiError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return e.Message }

// errf builds an apiError with a formatted message.
func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// decodeJSON parses a request body into dst with strict field checking.
func decodeJSON(r *http.Request, dst any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return errf(http.StatusBadRequest, "invalid_json", "decoding request body: %v", err)
	}
	return nil
}

// resolveProgram validates and resolves the program under measurement —
// a registry benchmark by name, or an inline composed-workload spec
// synthesized through the compose DSL — plus its size parameters,
// substituting defaults for zero fields. Exactly one of name / workload
// must be set.
func resolveProgram(name string, workload json.RawMessage, size, iters int) (benchmarks.Benchmark, benchmarks.Size, *apiError) {
	var b benchmarks.Benchmark
	switch {
	case len(workload) > 0 && name != "":
		return nil, benchmarks.Size{}, errf(http.StatusBadRequest, "invalid_workload",
			"benchmark and workload are mutually exclusive; set one")
	case len(workload) > 0:
		w, err := compose.FromJSON(workload)
		if err != nil {
			return nil, benchmarks.Size{}, errf(http.StatusBadRequest, "invalid_workload", "%v", err)
		}
		b = w
	case name == "":
		return nil, benchmarks.Size{}, errf(http.StatusBadRequest, "missing_benchmark", "benchmark or workload is required")
	default:
		var err error
		b, err = benchmarks.ByName(name)
		if err != nil {
			return nil, benchmarks.Size{}, errf(http.StatusBadRequest, "unknown_benchmark", "%v", err)
		}
	}
	if size < 0 || size > maxSize {
		return nil, benchmarks.Size{}, errf(http.StatusBadRequest, "invalid_size", "size must be in [0, %d], got %d", maxSize, size)
	}
	if iters < 0 || iters > maxIters {
		return nil, benchmarks.Size{}, errf(http.StatusBadRequest, "invalid_iters", "iters must be in [0, %d], got %d", maxIters, iters)
	}
	sz := b.DefaultSize()
	if size > 0 {
		sz.N = size
	}
	if iters > 0 {
		sz.Iters = iters
	}
	sz.Verify = false
	return b, sz, nil
}

// resolveMachine validates and resolves an environment preset name.
func resolveMachine(name string) (machine.Env, *apiError) {
	if name == "" {
		return machine.Env{}, errf(http.StatusBadRequest, "missing_machine", "machine is required")
	}
	env, err := machine.ByName(name)
	if err != nil {
		return machine.Env{}, errf(http.StatusBadRequest, "unknown_machine", "%v", err)
	}
	return env, nil
}

// resolve validates an extrapolation request and returns its resolved
// parts: the benchmark, the concrete size, the environment, and the
// effective processor count.
func (req *ExtrapolateRequest) resolve() (benchmarks.Benchmark, benchmarks.Size, machine.Env, int, *apiError) {
	b, sz, apiErr := resolveProgram(req.Benchmark, req.Workload, req.Size, req.Iters)
	if apiErr != nil {
		return nil, benchmarks.Size{}, machine.Env{}, 0, apiErr
	}
	env, apiErr := resolveMachine(req.Machine)
	if apiErr != nil {
		return nil, benchmarks.Size{}, machine.Env{}, 0, apiErr
	}
	if req.Threads < 1 || req.Threads > maxThreads {
		return nil, benchmarks.Size{}, machine.Env{}, 0,
			errf(http.StatusBadRequest, "invalid_threads", "threads must be in [1, %d], got %d", maxThreads, req.Threads)
	}
	if apiErr := checkWorkBudget(b, sz, req.Threads); apiErr != nil {
		return nil, benchmarks.Size{}, machine.Env{}, 0, apiErr
	}
	procs := req.Procs
	if procs == 0 {
		procs = req.Threads
	}
	if procs < 0 || procs > req.Threads || req.Threads%procs != 0 {
		return nil, benchmarks.Size{}, machine.Env{}, 0,
			errf(http.StatusBadRequest, "invalid_procs", "procs must be a positive divisor of threads (threads=%d, procs=%d)", req.Threads, req.Procs)
	}
	return b, sz, env, procs, nil
}

// resolve validates a sweep request and returns the benchmark, size,
// target environments (one per requested machine, in request order),
// and ladder. Single-machine requests resolve to a one-element slice.
func (req *SweepRequest) resolve() (benchmarks.Benchmark, benchmarks.Size, []machine.Env, []int, *apiError) {
	b, sz, apiErr := resolveProgram(req.Benchmark, req.Workload, req.Size, req.Iters)
	if apiErr != nil {
		return nil, benchmarks.Size{}, nil, nil, apiErr
	}
	envs, apiErr := req.resolveMachines()
	if apiErr != nil {
		return nil, benchmarks.Size{}, nil, nil, apiErr
	}
	switch req.Mode {
	case "", modeExact:
		req.Mode = "" // normalize: "" and "exact" are one mode
	case modeFitted:
	default:
		return nil, benchmarks.Size{}, nil, nil,
			errf(http.StatusBadRequest, "invalid_mode", "mode must be %q or %q, got %q", modeExact, modeFitted, req.Mode)
	}
	ladder := req.Procs
	if len(ladder) == 0 {
		ladder = []int{1, 2, 4, 8, 16, 32}
	}
	ladderCap := maxLadderLen
	if req.Mode == modeFitted {
		ladderCap = maxFittedLadderLen
	}
	if len(ladder) > ladderCap {
		return nil, benchmarks.Size{}, nil, nil,
			errf(http.StatusBadRequest, "invalid_procs", "ladder has %d entries, max %d", len(ladder), ladderCap)
	}
	totalThreads := 0
	for _, n := range ladder {
		if n < 1 || n > maxThreads {
			return nil, benchmarks.Size{}, nil, nil,
				errf(http.StatusBadRequest, "invalid_procs", "ladder entry %d out of [1, %d]", n, maxThreads)
		}
		totalThreads += n
	}
	// A sweep measures once per ladder entry — machines share those
	// measurements — so its budget covers the ladder's thread total,
	// independent of how many machines are swept. A fitted sweep
	// simulates only its anchors, so its budget covers the worst-case
	// anchor set instead of the dense ladder.
	if req.Mode == modeFitted {
		totalThreads = fittedThreadBudget(ladder)
	}
	if apiErr := checkWorkBudget(b, sz, totalThreads); apiErr != nil {
		return nil, benchmarks.Size{}, nil, nil, apiErr
	}
	return b, sz, envs, ladder, nil
}

// fittedThreadBudget is the worst-case measured-thread total of a
// fitted sweep: refinement simulates at most model.AnchorBudget distinct
// ladder points, so the heaviest possible anchor set is the largest
// budget-many distinct entries.
func fittedThreadBudget(ladder []int) int {
	u := make([]int, 0, len(ladder))
	seen := make(map[int]bool, len(ladder))
	for _, n := range ladder {
		if !seen[n] {
			seen[n] = true
			u = append(u, n)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(u)))
	budget := model.AnchorBudget(len(u), model.Options{})
	total := 0
	for _, n := range u[:budget] {
		total += n
	}
	return total
}

// resolveMachines validates the machine / machines fields: exactly one
// must be set, every name must resolve, and the list is bounded and
// duplicate-free (duplicates would be wasted simulation work returning
// identical curves).
func (req *SweepRequest) resolveMachines() ([]machine.Env, *apiError) {
	if req.Machine != "" && len(req.Machines) > 0 {
		return nil, errf(http.StatusBadRequest, "invalid_machines",
			"machine and machines are mutually exclusive; set one")
	}
	if len(req.Machines) == 0 {
		env, apiErr := resolveMachine(req.Machine)
		if apiErr != nil {
			return nil, apiErr
		}
		return []machine.Env{env}, nil
	}
	if len(req.Machines) > maxSweepMachines {
		return nil, errf(http.StatusBadRequest, "invalid_machines",
			"machines has %d entries, max %d", len(req.Machines), maxSweepMachines)
	}
	envs := make([]machine.Env, len(req.Machines))
	seen := make(map[string]bool, len(req.Machines))
	for i, name := range req.Machines {
		env, apiErr := resolveMachine(name)
		if apiErr != nil {
			return nil, apiErr
		}
		if seen[env.Name] {
			return nil, errf(http.StatusBadRequest, "invalid_machines",
				"machine %q listed more than once", env.Name)
		}
		seen[env.Name] = true
		envs[i] = env
	}
	return envs, nil
}
