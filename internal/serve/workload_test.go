package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"extrap/internal/trace"
)

// workloadSpec is the nested composed spec the acceptance tests sweep:
// a pipeline nesting a task farm, a 2-D stencil, and a seq combinator
// of bsp + tree reduction — every pattern family in one tree.
const workloadSpec = `{"size":8,"iters":2,"root":{"kind":"pipeline","message_bytes":32,"stages":[
	{"kind":"task_farm","tasks":24,"grain":4,"imbalance":0.5},
	{"kind":"stencil","width":12,"height":8,"sweeps":2,"grain":2},
	{"kind":"seq","children":[{"kind":"bsp","supersteps":2,"message_bytes":64},{"kind":"reduction","op":"tree"}]}]}}`

// workloadSweepBody embeds the spec in a multi-machine sweep request.
var workloadSweepBody = `{"workload":` + workloadSpec +
	`,"machines":["cm5","generic-dm","shared-mem"],"procs":[1,2,4,8]}`

// TestWorkloadSweepByteIdenticalMatrix is the tentpole acceptance test
// for composed workloads: the same nested spec served via /v1/sweep
// must answer byte-identically across solo vs coordinator+2-workers,
// per-cell vs batch-8 simulation, and XTRP1 vs XTRP2 trace caches.
func TestWorkloadSweepByteIdenticalMatrix(t *testing.T) {
	_, solo := newTestServer(t, Config{Workers: 2})
	status, want := post(t, solo.URL+"/v1/sweep", workloadSweepBody)
	if status != http.StatusOK {
		t.Fatalf("solo workload sweep: status %d: %s", status, want)
	}
	if !strings.Contains(want, `"benchmark":"wl:`) {
		t.Fatalf("sweep response does not carry the derived workload name: %.200s", want)
	}

	_, w1 := newWorkerServer(t, Config{Workers: 2})
	_, w2 := newWorkerServer(t, Config{Workers: 2})
	coordSrv, coord := newCoordinatorServer(t, Config{Workers: 2}, w1.URL, w2.URL)
	variants := map[string]*httptest.Server{
		"coordinator+2workers": coord,
	}
	for name, cfg := range map[string]Config{
		"batch8": {Workers: 2, BatchSize: 8},
		"xtrp1":  {Workers: 2, TraceFormat: trace.FormatXTRP1},
		"xtrp2":  {Workers: 2, TraceFormat: trace.FormatXTRP2},
	} {
		_, ts := newTestServer(t, cfg)
		variants[name] = ts
	}
	for name, ts := range variants {
		status, got := post(t, ts.URL+"/v1/sweep", workloadSweepBody)
		if status != http.StatusOK {
			t.Fatalf("%s workload sweep: status %d: %s", name, status, got)
		}
		if got != want {
			t.Errorf("%s workload sweep differs from solo:\n%s\nvs\n%s", name, got, want)
		}
	}
	if st := coordSrv.coord.Stats(); st.Dispatched == 0 || st.Local != 0 {
		t.Errorf("coordinator did not shard the composed workload: %+v", st)
	}
}

// TestWorkloadJobRestartResume: an async job for a composed workload
// survives a crash-shaped restart — the restarted server restores every
// persisted cell from the store and renders the same result bytes, and
// the job echoes the normalized spec alongside the derived name.
func TestWorkloadJobRestartResume(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Config{Workers: 2, StoreDir: dir, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	id := submitJob(t, ts1.URL, workloadSweepBody)
	done := waitJob(t, ts1.URL, id)
	if done.Status != "done" {
		t.Fatalf("workload job: %+v", done)
	}
	if !strings.HasPrefix(done.Benchmark, "wl:") {
		t.Errorf("job benchmark = %q, want derived wl:<hash> name", done.Benchmark)
	}
	if len(done.Workload) == 0 || !strings.Contains(string(done.Workload), `"pipeline"`) {
		t.Errorf("job does not echo the workload spec: %s", done.Workload)
	}
	want := resultJSON(t, done)

	// The done job's result must render byte-identically to the
	// synchronous sweep for the same request.
	status, sweep := post(t, ts1.URL+"/v1/sweep", workloadSweepBody)
	if status != http.StatusOK {
		t.Fatalf("sync sweep: status %d: %s", status, sweep)
	}
	if strings.TrimSpace(sweep) != want {
		t.Errorf("done workload job differs from synchronous sweep:\n%s\nvs\n%s", want, sweep)
	}
	ts1.Close()
	srv1.Close()

	rewriteJobRunning(t, dir, id)

	srv2, err := New(Config{Workers: 2, StoreDir: dir, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)

	resumed := waitJob(t, ts2.URL, id)
	if resumed.Status != "done" {
		t.Fatalf("resumed workload job: %+v", resumed)
	}
	if got := resultJSON(t, resumed); got != want {
		t.Errorf("resumed workload job differs from first run:\n%s\nvs\n%s", got, want)
	}
	if jt := srv2.jobs.Stats(); jt.CellsLoaded == 0 || jt.CellsComputed != 0 {
		t.Errorf("resume should restore workload cells from the store: %+v", jt)
	}
}

// TestWorkloadExtrapolate: /v1/extrapolate accepts a workload object in
// place of a benchmark name and the composed program predicts like any
// registered benchmark — including through a preset referenced by name.
func TestWorkloadExtrapolate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"workload":` + workloadSpec + `,"threads":4,"machine":"cm5"}`
	status, resp := post(t, ts.URL+"/v1/extrapolate", body)
	if status != http.StatusOK {
		t.Fatalf("workload extrapolate: status %d: %s", status, resp)
	}
	if !strings.Contains(resp, `"benchmark":"wl:`) {
		t.Errorf("response does not name the derived workload: %.200s", resp)
	}

	// Registered presets resolve through the plain benchmark field.
	for _, preset := range []string{"pipeline8", "farm-stencil", "bsp-reduce"} {
		status, resp := post(t, ts.URL+"/v1/extrapolate",
			`{"benchmark":"`+preset+`","threads":4,"machine":"cm5"}`)
		if status != http.StatusOK {
			t.Errorf("preset %s: status %d: %s", preset, status, resp)
		}
	}
}

// TestWorkloadValidation: the workload field is mutually exclusive with
// benchmark, malformed specs are rejected with invalid_workload, and
// omitting both keeps the missing_benchmark error.
func TestWorkloadValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, code string
	}{
		{"both set", `{"benchmark":"grid","workload":` + workloadSpec + `,"threads":2,"machine":"cm5"}`, "invalid_workload"},
		{"unknown kind", `{"workload":{"root":{"kind":"warp"}},"threads":2,"machine":"cm5"}`, "invalid_workload"},
		{"neither", `{"threads":2,"machine":"cm5"}`, "missing_benchmark"},
	}
	for _, tc := range cases {
		status, body := post(t, ts.URL+"/v1/extrapolate", tc.body)
		if status != http.StatusBadRequest || !strings.Contains(body, tc.code) {
			t.Errorf("%s: status %d body %.200s, want 400 %s", tc.name, status, body, tc.code)
		}
	}
}

// TestPatternsEndpoint: GET /v1/patterns publishes the DSL vocabulary,
// the registered presets, and the validation ceilings.
func TestPatternsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/v1/patterns")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/patterns: status %d: %s", status, body)
	}
	for _, want := range []string{
		`"pipeline"`, `"task_farm"`, `"stencil"`, `"reduction"`, `"bsp"`,
		"pipeline8", "farm-stencil", "bsp-reduce",
		`"max_depth"`, `"max_nodes"`, `"max_events"`, `"wl/v1|`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/v1/patterns missing %s: %.300s", want, body)
		}
	}
}

// TestComposeVarsExported: serving a composed workload surfaces the
// compose counters in the /debug/vars submap.
func TestComposeVarsExported(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"workload":` + workloadSpec + `,"threads":2,"machine":"cm5"}`
	if status, resp := post(t, ts.URL+"/v1/extrapolate", body); status != http.StatusOK {
		t.Fatalf("workload extrapolate: status %d: %s", status, resp)
	}
	status, vars := get(t, ts.URL+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", status)
	}
	if !strings.Contains(vars, `"compose"`) || !strings.Contains(vars, `"specs_parsed"`) {
		t.Errorf("/debug/vars missing compose submap: %.300s", vars)
	}
}
