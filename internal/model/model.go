// Package model turns dense sweep ladders into sparse work: it fits
// analytic time curves over a small fixed basis to a handful of
// truly-simulated anchor points and answers the remaining ladder cells
// by evaluating the fit, with per-point uncertainty intervals derived
// from the fit covariance.
//
// The basis is the classic scaling vocabulary — a serial term (1), an
// Amdahl/Gustafson parallel term (1/p), and logarithmic and linear
// communication terms (log2 p, p) — so T(p) ≈ c0 + c1/p + c2·log2(p) +
// c3·p. Refinement is residual-driven: start from a small evenly-spaced
// anchor set (always including the ladder's endpoints, so the speedup
// baseline is exact), fit, and while the worst relative anchor residual
// exceeds the tolerance, simulate the non-anchor ladder point with the
// largest relative predictive standard error, refit, and repeat until
// the tolerance or the anchor budget is hit.
//
// Everything is deterministic by construction: the basis is fixed, the
// normal equations are ridge-stabilized and solved by Cholesky without
// pivoting (a fixed operation order — no data-dependent row swaps), the
// next anchor is chosen by a strict-greater scan over ascending
// processor counts (ties go to the lowest count), and there is no RNG
// anywhere. The same ladder and anchor values therefore produce the
// same fit, bit for bit, on every run — which is what lets Replay
// re-derive a byte-identical result from persisted anchors after a
// crash, on any replica.
package model

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"extrap/internal/vtime"
)

// BasisNames labels the fixed basis functions in fit order; coefficient
// i of a curve fit multiplies BasisNames[i]. With fewer anchors than
// basis terms the basis is truncated in this order (the low-order terms
// survive), never reordered.
var BasisNames = []string{"1", "1/p", "log2(p)", "p"}

const basisTerms = 4

// basisVec evaluates the first k basis terms at processor count p.
func basisVec(p, k int) [basisTerms]float64 {
	fp := float64(p)
	v := [basisTerms]float64{1, 1 / fp, math.Log2(fp), fp}
	for i := k; i < basisTerms; i++ {
		v[i] = 0
	}
	return v
}

// Default fitting parameters. The tolerance is a relative residual —
// 0.005 means every anchor is reproduced within 0.5% before refinement
// stops early — and the anchor budget is the quarter-of-the-ladder
// ceiling the fitted mode's cost contract advertises.
const (
	DefaultTolerance  = 0.005
	DefaultAnchorFrac = 0.25
	DefaultMinAnchors = 6
)

// Options shape a fit. The zero value selects the defaults; every
// caller that wants Replay to reproduce a Run must use the same
// Options for both (the serving layers always use the zero value).
type Options struct {
	// Tolerance is the convergence target for the maximum relative
	// anchor residual; ≤ 0 selects DefaultTolerance.
	Tolerance float64
	// AnchorFrac bounds simulated anchors as a fraction of the ladder's
	// distinct points; outside (0, 1] selects DefaultAnchorFrac.
	AnchorFrac float64
	// MinAnchors is the floor on the anchor budget (and the initial
	// anchor count), so short ladders still get enough support for the
	// basis; ≤ 0 selects DefaultMinAnchors, and values below the basis
	// size are raised to it.
	MinAnchors int
}

func (o Options) withDefaults() Options {
	if o.Tolerance <= 0 {
		o.Tolerance = DefaultTolerance
	}
	if o.AnchorFrac <= 0 || o.AnchorFrac > 1 {
		o.AnchorFrac = DefaultAnchorFrac
	}
	if o.MinAnchors <= 0 {
		o.MinAnchors = DefaultMinAnchors
	} else if o.MinAnchors < basisTerms {
		o.MinAnchors = basisTerms
	}
	return o
}

// AnchorBudget reports the maximum number of distinct ladder points Run
// may simulate for a ladder with n distinct entries: the larger of
// MinAnchors and AnchorFrac·n, capped at n. Exported so serving layers
// can derive the fitted mode's work budget from the same arithmetic.
func AnchorBudget(n int, o Options) int {
	o = o.withDefaults()
	b := int(float64(n) * o.AnchorFrac)
	if b < o.MinAnchors {
		b = o.MinAnchors
	}
	if b > n {
		b = n
	}
	return b
}

// Simulator produces the exact simulated total time of every curve
// (machine model) at one ladder point. Run calls it serially, in
// ascending processor order within each refinement round, so its
// implementations need no internal ordering discipline.
type Simulator func(ctx context.Context, procs int) ([]vtime.Time, error)

// Anchor is one truly-simulated ladder point: the processor count and
// the exact per-curve times. Anchors are what persists — Replay rebuilds
// the whole fitted result from them.
type Anchor struct {
	Procs int
	Times []vtime.Time // one exact total per curve, in curve order
}

// Point is one rendered ladder cell of a fitted curve.
type Point struct {
	// Procs is the ladder entry.
	Procs int
	// Simulated reports the cell's provenance: true for an anchor (Value
	// is the exact simulation, Exact holds it as an integer), false for
	// a cell answered by evaluating the fit.
	Simulated bool
	// Value is the predicted total time in virtual nanoseconds — exact
	// for anchors, the fit's evaluation otherwise.
	Value float64
	// Exact is the integer simulation result; valid only when Simulated.
	Exact vtime.Time
	// Interval is the ± half-width of the fit's ~95% prediction band in
	// virtual nanoseconds (2× the predictive standard error from the fit
	// covariance); 0 for simulated cells.
	Interval float64
}

// CurveFit is one curve's fitted ladder plus its fit diagnostics.
type CurveFit struct {
	// Points has one entry per ladder cell, in ladder order.
	Points []Point
	// Coeffs are the basis coefficients, aligned with BasisNames
	// (truncated when the anchor count is below the basis size).
	Coeffs []float64
	// MaxRelResidual and MeanRelResidual summarize how well the final
	// fit reproduces its own anchors, relative to each anchor's value.
	MaxRelResidual  float64
	MeanRelResidual float64
}

// Result is a completed fit over a ladder.
type Result struct {
	Ladder  []int
	Anchors []Anchor // ascending processor order
	Curves  []CurveFit
	// Iterations counts fit rounds (one initial fit plus one per
	// refinement anchor).
	Iterations int
	// Converged reports whether the tolerance was met (vs. stopping at
	// the anchor budget).
	Converged bool
	Tolerance float64
	// Budget is the anchor ceiling the refinement ran under.
	Budget int
	// ResidualHistory records the maximum relative anchor residual after
	// each fit round; refinement drives it down round over round.
	ResidualHistory []float64
}

// Package counters for /debug/vars, mirroring the pattern of
// trace.ReadCompressionCounters: cheap atomics bumped on the hot path,
// snapshot on demand. Replay bumps nothing — the counters describe
// fitting work performed, and a replay only re-derives arithmetic.
var (
	ctrRuns    atomic.Int64
	ctrIters   atomic.Int64
	ctrAnchors atomic.Int64
	ctrFitted  atomic.Int64
)

// Counters is a snapshot of the package's fitting activity.
type Counters struct {
	Runs             int64 // completed Run calls
	FitIterations    int64 // fit rounds across all runs
	AnchorsSimulated int64 // ladder points truly simulated
	CellsFitted      int64 // ladder cells answered by evaluation
}

// ReadCounters snapshots the package counters.
func ReadCounters() Counters {
	return Counters{
		Runs:             ctrRuns.Load(),
		FitIterations:    ctrIters.Load(),
		AnchorsSimulated: ctrAnchors.Load(),
		CellsFitted:      ctrFitted.Load(),
	}
}

// Run fits every curve over the ladder, simulating anchors through sim
// as refinement demands them. curves is how many values sim yields per
// point (one per machine model). The returned Result's anchor set is a
// deterministic function of (ladder, anchor values, opts), which is the
// property Replay relies on.
func Run(ctx context.Context, ladder []int, curves int, sim Simulator, opts Options) (*Result, error) {
	return run(ctx, ladder, curves, sim, opts, true)
}

// Replay re-derives a fitted Result from persisted anchors: it reruns
// the refinement with a simulator that only looks anchors up, so the
// selection walk re-requests exactly the set Run simulated and the
// output is byte-identical to the original Run — across process
// restarts and replicas. A stored set that the deterministic walk would
// not have produced (corruption, or Options drift) is rejected.
func Replay(ladder []int, anchors []Anchor, opts Options) (*Result, error) {
	if len(anchors) == 0 {
		return nil, errors.New("model: replay needs at least one anchor")
	}
	curves := len(anchors[0].Times)
	lookup := make(map[int][]vtime.Time, len(anchors))
	for _, a := range anchors {
		if len(a.Times) != curves {
			return nil, fmt.Errorf("model: anchor p=%d has %d curves, want %d", a.Procs, len(a.Times), curves)
		}
		if _, dup := lookup[a.Procs]; dup {
			return nil, fmt.Errorf("model: duplicate anchor p=%d", a.Procs)
		}
		lookup[a.Procs] = a.Times
	}
	sim := func(_ context.Context, p int) ([]vtime.Time, error) {
		ts, ok := lookup[p]
		if !ok {
			return nil, fmt.Errorf("model: stored anchors are missing p=%d (refinement would have simulated it)", p)
		}
		return ts, nil
	}
	res, err := run(context.Background(), ladder, curves, sim, opts, false)
	if err != nil {
		return nil, err
	}
	if len(res.Anchors) != len(lookup) {
		return nil, fmt.Errorf("model: %d stored anchors but refinement selected %d — anchor set does not match this ladder",
			len(lookup), len(res.Anchors))
	}
	return res, nil
}

func run(ctx context.Context, ladder []int, curves int, sim Simulator, opts Options, count bool) (*Result, error) {
	o := opts.withDefaults()
	if len(ladder) == 0 {
		return nil, errors.New("model: empty ladder")
	}
	if curves < 1 {
		return nil, fmt.Errorf("model: need at least one curve, got %d", curves)
	}
	for _, p := range ladder {
		if p < 1 {
			return nil, fmt.Errorf("model: ladder entry %d must be ≥ 1", p)
		}
	}
	u := distinctSorted(ladder)
	budget := AnchorBudget(len(u), o)

	// Initial anchors: MinAnchors points (clamped to the budget and the
	// ladder) evenly spaced over the distinct counts, endpoints included
	// — the low end anchors the speedup baseline exactly, the high end
	// pins the extrapolation-prone tail.
	isAnchor := make([]bool, len(u))
	init := o.MinAnchors
	if init > budget {
		init = budget
	}
	if init >= len(u) {
		for i := range isAnchor {
			isAnchor[i] = true
		}
	} else {
		for i := 0; i < init; i++ {
			idx := (2*i*(len(u)-1) + init - 1) / (2 * (init - 1))
			isAnchor[idx] = true
		}
		isAnchor[0] = true
		isAnchor[len(u)-1] = true
	}

	times := make(map[int][]vtime.Time, budget)
	fits := make([]curveFit, curves)
	var history []float64
	iterations := 0
	converged := false
	for {
		// Simulate anchors not yet measured, ascending.
		for ui, p := range u {
			if !isAnchor[ui] {
				continue
			}
			if _, ok := times[p]; ok {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			ts, err := sim(ctx, p)
			if err != nil {
				return nil, fmt.Errorf("model: simulating anchor p=%d: %w", p, err)
			}
			if len(ts) != curves {
				return nil, fmt.Errorf("model: simulator returned %d curves at p=%d, want %d", len(ts), p, curves)
			}
			times[p] = append([]vtime.Time(nil), ts...)
			if count {
				ctrAnchors.Add(1)
			}
		}

		// Refit every curve over the current anchors.
		var anchorPs []int
		for ui, p := range u {
			if isAnchor[ui] {
				anchorPs = append(anchorPs, p)
			}
		}
		maxRel := 0.0
		for c := 0; c < curves; c++ {
			ys := make([]float64, len(anchorPs))
			for i, p := range anchorPs {
				ys[i] = float64(times[p][c])
			}
			fits[c] = fitCurve(anchorPs, ys)
			if fits[c].maxRel > maxRel {
				maxRel = fits[c].maxRel
			}
		}
		iterations++
		if count {
			ctrIters.Add(1)
		}
		history = append(history, maxRel)
		if maxRel <= o.Tolerance {
			converged = true
			break
		}
		if len(anchorPs) >= budget || len(anchorPs) == len(u) {
			break
		}

		// Next anchor: the non-anchor point where the fit is least sure
		// of itself — the largest relative predictive standard error
		// across curves. The ascending strict-greater scan makes ties
		// resolve to the lowest processor count, deterministically.
		best, bestScore := -1, -1.0
		for ui, p := range u {
			if isAnchor[ui] {
				continue
			}
			score := 0.0
			for c := range fits {
				if s := fits[c].relStderr(p); s > score {
					score = s
				}
			}
			if score > bestScore {
				best, bestScore = ui, score
			}
		}
		if best < 0 {
			break
		}
		isAnchor[best] = true
	}

	res := &Result{
		Ladder:          append([]int(nil), ladder...),
		Curves:          make([]CurveFit, curves),
		Iterations:      iterations,
		Converged:       converged,
		Tolerance:       o.Tolerance,
		Budget:          budget,
		ResidualHistory: history,
	}
	for ui, p := range u {
		if isAnchor[ui] {
			res.Anchors = append(res.Anchors, Anchor{Procs: p, Times: times[p]})
		}
	}
	for c := 0; c < curves; c++ {
		f := &fits[c]
		cf := CurveFit{
			Points:          make([]Point, len(ladder)),
			Coeffs:          append([]float64(nil), f.coeffs[:f.k]...),
			MaxRelResidual:  f.maxRel,
			MeanRelResidual: f.meanRel,
		}
		for li, p := range ladder {
			if ts, ok := times[p]; ok {
				cf.Points[li] = Point{Procs: p, Simulated: true, Value: float64(ts[c]), Exact: ts[c]}
				continue
			}
			cf.Points[li] = Point{Procs: p, Value: f.predict(p), Interval: 2 * f.stderr(p)}
			if count {
				ctrFitted.Add(1)
			}
		}
		res.Curves[c] = cf
	}
	if count {
		ctrRuns.Add(1)
	}
	return res, nil
}

// curveFit is one curve's solved least-squares state.
type curveFit struct {
	k       int // active basis terms (≤ basisTerms)
	coeffs  [basisTerms]float64
	ainv    [basisTerms][basisTerms]float64 // inverse of the regularized normal matrix
	s2      float64                         // residual variance estimate
	maxRel  float64
	meanRel float64
}

// fitCurve solves the least-squares problem over the anchors via the
// normal equations: A = XᵀX (ridge-stabilized by a tiny multiple of its
// largest diagonal, so A is strictly positive definite and Cholesky
// needs no pivoting), b = Xᵀy. The basis truncates to the anchor count
// when anchors are scarce. A numerically hopeless system degrades to
// the zero fit — deterministic, and its huge residuals simply drive
// refinement to add more anchors.
func fitCurve(ps []int, ys []float64) curveFit {
	m := len(ps)
	k := basisTerms
	if k > m {
		k = m
	}
	var a [basisTerms][basisTerms]float64
	var bv [basisTerms]float64
	for i, p := range ps {
		x := basisVec(p, k)
		// Weight each row by 1/y so the solve minimizes RELATIVE squared
		// residuals — the quantity the tolerance and the refinement score
		// are expressed in — instead of letting the largest-magnitude
		// anchors dominate.
		w := math.Abs(ys[i])
		if w < 1 {
			w = 1
		}
		w = 1 / w
		for r := 0; r < k; r++ {
			bv[r] += x[r] * w * w * ys[i]
			for c := 0; c < k; c++ {
				a[r][c] += x[r] * x[c] * w * w
			}
		}
	}
	maxDiag := 0.0
	for r := 0; r < k; r++ {
		if a[r][r] > maxDiag {
			maxDiag = a[r][r]
		}
	}
	if maxDiag <= 0 {
		maxDiag = 1
	}

	f := curveFit{k: k}
	lam := 1e-12 * maxDiag
	solved := false
	for attempt := 0; attempt < 4 && !solved; attempt++ {
		ar := a
		for r := 0; r < k; r++ {
			ar[r][r] += lam
		}
		var l [basisTerms][basisTerms]float64
		if cholesky(&ar, &l, k) {
			f.coeffs = cholSolve(&l, bv, k)
			for col := 0; col < k; col++ {
				var e [basisTerms]float64
				e[col] = 1
				sol := cholSolve(&l, e, k)
				for r := 0; r < k; r++ {
					f.ainv[r][col] = sol[r]
				}
			}
			solved = true
		}
		lam *= 1e6
	}

	rss, relSum := 0.0, 0.0
	for i, p := range ps {
		r := ys[i] - f.predict(p)
		den := math.Abs(ys[i])
		if den < 1 {
			den = 1
		}
		rel := math.Abs(r) / den
		rss += rel * rel // weighted residuals, matching the weighted solve
		relSum += rel
		if rel > f.maxRel {
			f.maxRel = rel
		}
	}
	f.meanRel = relSum / float64(m)
	if m > k {
		f.s2 = rss / float64(m-k)
	}
	return f
}

// predict evaluates the fit at processor count p.
func (f *curveFit) predict(p int) float64 {
	x := basisVec(p, f.k)
	s := 0.0
	for i := 0; i < f.k; i++ {
		s += f.coeffs[i] * x[i]
	}
	return s
}

// stderr is the predictive standard error at p: s·sqrt(xᵀ(XᵀX)⁻¹x).
func (f *curveFit) stderr(p int) float64 {
	x := basisVec(p, f.k)
	q := 0.0
	for r := 0; r < f.k; r++ {
		for c := 0; c < f.k; c++ {
			q += x[r] * f.ainv[r][c] * x[c]
		}
	}
	if q < 0 {
		q = 0
	}
	return math.Sqrt(f.s2 * q)
}

// relStderr scales the predictive standard error by the predicted
// magnitude (floored at one nanosecond) — the refinement score.
func (f *curveFit) relStderr(p int) float64 {
	den := math.Abs(f.predict(p))
	if den < 1 {
		den = 1
	}
	return f.stderr(p) / den
}

// cholesky factors the leading k×k block of a as l·lᵀ, reporting
// whether a is positive definite. Fixed iteration order, no pivoting.
func cholesky(a, l *[basisTerms][basisTerms]float64, k int) bool {
	for r := 0; r < k; r++ {
		for c := 0; c <= r; c++ {
			s := a[r][c]
			for j := 0; j < c; j++ {
				s -= l[r][j] * l[c][j]
			}
			if r == c {
				if s <= 0 {
					return false
				}
				l[r][r] = math.Sqrt(s)
			} else {
				l[r][c] = s / l[c][c]
			}
		}
	}
	return true
}

// cholSolve solves l·lᵀ·x = b by forward then back substitution.
func cholSolve(l *[basisTerms][basisTerms]float64, b [basisTerms]float64, k int) [basisTerms]float64 {
	var y [basisTerms]float64
	for r := 0; r < k; r++ {
		s := b[r]
		for j := 0; j < r; j++ {
			s -= l[r][j] * y[j]
		}
		y[r] = s / l[r][r]
	}
	var x [basisTerms]float64
	for r := k - 1; r >= 0; r-- {
		s := y[r]
		for j := r + 1; j < k; j++ {
			s -= l[j][r] * x[j]
		}
		x[r] = s / l[r][r]
	}
	return x
}

// distinctSorted returns the ladder's distinct entries ascending.
func distinctSorted(ladder []int) []int {
	u := append([]int(nil), ladder...)
	sort.Ints(u)
	out := u[:0]
	for i, p := range u {
		if i == 0 || p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}
