package model

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"extrap/internal/vtime"
)

// synthSim builds a Simulator evaluating the given analytic curves
// (rounded to whole virtual nanoseconds, like every real simulation).
func synthSim(t *testing.T, calls *int, curves ...func(p int) float64) Simulator {
	t.Helper()
	return func(_ context.Context, p int) ([]vtime.Time, error) {
		if calls != nil {
			*calls++
		}
		out := make([]vtime.Time, len(curves))
		for i, f := range curves {
			out[i] = vtime.Time(math.Round(f(p)))
		}
		return out, nil
	}
}

func ladderTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// A curve exactly in the basis span must be recovered to high accuracy
// from the sparse anchors, and every cell — simulated or fitted — must
// land on the analytic value.
func TestFitRecoversBasisCoefficients(t *testing.T) {
	want := []float64{5e9, 2e9, 3e8, 1e6} // c0 + c1/p + c2·log2(p) + c3·p
	curve := func(p int) float64 {
		fp := float64(p)
		return want[0] + want[1]/fp + want[2]*math.Log2(fp) + want[3]*fp
	}
	ladder := ladderTo(64)
	calls := 0
	res, err := Run(context.Background(), ladder, 1, synthSim(t, &calls, curve), Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Errorf("fit of an in-span curve did not converge (history %v)", res.ResidualHistory)
	}
	budget := AnchorBudget(64, Options{})
	if len(res.Anchors) > budget || calls > budget {
		t.Errorf("simulated %d anchors (%d calls), budget %d", len(res.Anchors), calls, budget)
	}
	if len(res.Anchors)*4 > len(ladder) {
		t.Errorf("simulated %d of %d cells, want ≤ 25%%", len(res.Anchors), len(ladder))
	}
	got := res.Curves[0].Coeffs
	if len(got) != len(want) {
		t.Fatalf("got %d coefficients, want %d", len(got), len(want))
	}
	for i := range want {
		if rel := math.Abs(got[i]-want[i]) / math.Abs(want[i]); rel > 1e-3 {
			t.Errorf("coeff[%d] (%s) = %g, want %g (rel err %g)", i, BasisNames[i], got[i], want[i], rel)
		}
	}
	for _, pt := range res.Curves[0].Points {
		exact := curve(pt.Procs)
		if rel := math.Abs(pt.Value-exact) / exact; rel > DefaultTolerance {
			t.Errorf("p=%d: value %g vs analytic %g (rel %g)", pt.Procs, pt.Value, exact, rel)
		}
		if pt.Simulated {
			if pt.Interval != 0 || float64(pt.Exact) != pt.Value {
				t.Errorf("p=%d: simulated point has interval %g, exact %d vs value %g", pt.Procs, pt.Interval, pt.Exact, pt.Value)
			}
		} else if pt.Interval < 0 {
			t.Errorf("p=%d: negative interval %g", pt.Procs, pt.Interval)
		}
	}
}

// maxRelInterval is the refinement target: the worst fitted cell's
// uncertainty half-width relative to its predicted value.
func maxRelInterval(res *Result) float64 {
	maxU := 0.0
	for _, c := range res.Curves {
		for _, pt := range c.Points {
			if pt.Simulated {
				continue
			}
			den := math.Abs(pt.Value)
			if den < 1 {
				den = 1
			}
			if u := pt.Interval / den; u > maxU {
				maxU = u
			}
		}
	}
	return maxU
}

// Refinement must monotonically reduce the max residual uncertainty of
// the fitted cells. Anchor selection is greedy and independent of the
// budget, so running with budgets k and k+1 replays the same anchor
// trajectory one round apart — sweeping the budget therefore examines
// successive refinement rounds of one run.
func TestRefinementMonotonicallyReducesMaxResidual(t *testing.T) {
	curve := func(p int) float64 { // 1/p term plus a p^1.2 tail the basis can only approximate
		return 1e9 + 4e9/float64(p) + 2e7*math.Pow(float64(p), 1.2)
	}
	sim := synthSim(t, nil, curve)
	ladder := ladderTo(64)
	var seq []float64
	for k := 6; k <= 16; k++ {
		res, err := Run(context.Background(), ladder, 1, sim,
			Options{AnchorFrac: float64(k) / 64.0, Tolerance: 1e-12})
		if err != nil {
			t.Fatalf("Run (budget %d): %v", k, err)
		}
		if len(res.Anchors) != k {
			t.Fatalf("budget %d simulated %d anchors", k, len(res.Anchors))
		}
		if res.Iterations != len(res.ResidualHistory) {
			t.Errorf("iterations %d != history length %d", res.Iterations, len(res.ResidualHistory))
		}
		seq = append(seq, maxRelInterval(res))
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] > seq[i-1]*(1+1e-9) {
			t.Errorf("round %d max residual uncertainty %g > round %d's %g — refinement made the fit less sure",
				i, seq[i], i-1, seq[i-1])
		}
	}
	if seq[len(seq)-1] >= seq[0] {
		t.Errorf("refinement did not reduce uncertainty: first %g, last %g", seq[0], seq[len(seq)-1])
	}
}

// The same inputs must produce the same Result, field for field.
func TestRunDeterministic(t *testing.T) {
	curveA := func(p int) float64 { return 2e9 + 3e9/float64(p) + 1e7*float64(p) }
	curveB := func(p int) float64 { return 4e9 + 1e9/float64(p) + 2e8*math.Log2(float64(p)) }
	ladder := ladderTo(48)
	r1, err := Run(context.Background(), ladder, 2, synthSim(t, nil, curveA, curveB), Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := Run(context.Background(), ladder, 2, synthSim(t, nil, curveA, curveB), Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("two identical runs produced different results")
	}
}

// Replay over the anchors Run persisted must reproduce the Result
// exactly, and tampered anchor sets must be rejected.
func TestReplayMatchesRun(t *testing.T) {
	curve := func(p int) float64 { return 3e9 + 2e9/float64(p) + 4e7*math.Pow(float64(p), 1.3) }
	ladder := ladderTo(32)
	orig, err := Run(context.Background(), ladder, 1, synthSim(t, nil, curve), Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	replayed, err := Replay(ladder, orig.Anchors, Options{})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !reflect.DeepEqual(orig, replayed) {
		t.Error("replay differs from the original run")
	}

	if _, err := Replay(ladder, orig.Anchors[1:], Options{}); err == nil {
		t.Error("replay with a missing anchor should fail")
	}
	extra := append(append([]Anchor(nil), orig.Anchors...), Anchor{Procs: 999, Times: []vtime.Time{1}})
	if _, err := Replay(ladder, extra, Options{}); err == nil {
		t.Error("replay with a surplus anchor should fail")
	}
	if _, err := Replay(ladder, nil, Options{}); err == nil {
		t.Error("replay with no anchors should fail")
	}
}

func TestAnchorBudget(t *testing.T) {
	cases := []struct{ n, want int }{
		{64, 16}, {100, 25}, {8, 6}, {6, 6}, {4, 4}, {1, 1}, {256, 64},
	}
	for _, c := range cases {
		if got := AnchorBudget(c.n, Options{}); got != c.want {
			t.Errorf("AnchorBudget(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// Duplicate ladder entries share one anchor simulation and identical
// rendered cells.
func TestDuplicateLadderEntries(t *testing.T) {
	curve := func(p int) float64 { return 1e9 + 1e9/float64(p) }
	ladder := []int{1, 2, 2, 4, 8, 8, 16, 32}
	calls := 0
	res, err := Run(context.Background(), ladder, 1, synthSim(t, &calls, curve), Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls > 6 { // six distinct counts
		t.Errorf("simulated %d times for 6 distinct counts", calls)
	}
	pts := res.Curves[0].Points
	if !reflect.DeepEqual(pts[1], pts[2]) || !reflect.DeepEqual(pts[4], pts[5]) {
		t.Error("duplicate ladder entries rendered differently")
	}
}

func TestRunInputValidation(t *testing.T) {
	sim := synthSim(t, nil, func(p int) float64 { return 1e9 })
	if _, err := Run(context.Background(), nil, 1, sim, Options{}); err == nil {
		t.Error("empty ladder should fail")
	}
	if _, err := Run(context.Background(), []int{1, 0}, 1, sim, Options{}); err == nil {
		t.Error("non-positive ladder entry should fail")
	}
	if _, err := Run(context.Background(), []int{1, 2}, 0, sim, Options{}); err == nil {
		t.Error("zero curves should fail")
	}
	boom := errors.New("boom")
	bad := func(_ context.Context, p int) ([]vtime.Time, error) { return nil, boom }
	if _, err := Run(context.Background(), ladderTo(16), 1, bad, Options{}); !errors.Is(err, boom) {
		t.Errorf("simulator error not propagated: %v", err)
	}
	short := func(_ context.Context, p int) ([]vtime.Time, error) { return []vtime.Time{1}, nil }
	if _, err := Run(context.Background(), ladderTo(16), 2, short, Options{}); err == nil {
		t.Error("curve-count mismatch should fail")
	}
}

// Counters must move under Run and stay put under Replay.
func TestCounters(t *testing.T) {
	before := ReadCounters()
	curve := func(p int) float64 { return 2e9 + 1e9/float64(p) }
	ladder := ladderTo(40)
	res, err := Run(context.Background(), ladder, 1, synthSim(t, nil, curve), Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mid := ReadCounters()
	if mid.Runs != before.Runs+1 {
		t.Errorf("runs %d, want %d", mid.Runs, before.Runs+1)
	}
	if got, want := mid.AnchorsSimulated-before.AnchorsSimulated, int64(len(res.Anchors)); got != want {
		t.Errorf("anchors simulated +%d, want +%d", got, want)
	}
	if got, want := mid.CellsFitted-before.CellsFitted, int64(len(ladder)-len(res.Anchors)); got != want {
		t.Errorf("cells fitted +%d, want +%d", got, want)
	}
	if mid.FitIterations-before.FitIterations != int64(res.Iterations) {
		t.Errorf("fit iterations +%d, want +%d", mid.FitIterations-before.FitIterations, res.Iterations)
	}
	if _, err := Replay(ladder, res.Anchors, Options{}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if after := ReadCounters(); after != mid {
		t.Errorf("replay moved counters: %+v -> %+v", mid, after)
	}
}
