// Package direct is the validation comparator: a direct machine simulator
// that stands in for the physical CM-5 of the paper's Section 4.2. Where
// the ExtraP pipeline predicts performance from high-level component
// models (linear master-slave barrier, explicit message events, analytical
// contention sampled from simulator state), this package computes
// execution times with a deliberately different structure — epoch-based
// processing, a dissemination-style barrier cost, a load-dependent latency
// model, and deterministic run-to-run jitter — so that comparing the two
// (Figure 9) genuinely tests whether extrapolation reproduces the ranking
// and shape an independent "machine" produces, rather than comparing a
// model against itself.
//
// Substitution note (also recorded in DESIGN.md): the paper validated
// against real CM-5 runs; no CM-5 exists here, so the closest faithful
// equivalent is an independent simulator parameterized with the same
// published CM-5 characteristics.
package direct

import (
	"fmt"

	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

// Config parameterizes the machine.
type Config struct {
	// FlopScale scales measured compute time to the target processor
	// (0.41 for Sun 4 → CM-5, like MipsRatio).
	FlopScale float64
	// MsgBase is the fixed one-way message latency (software + network).
	MsgBase vtime.Time
	// PerByte is the payload cost per byte.
	PerByte vtime.Time
	// ServiceCost is the owner-side handling cost per request; it is
	// charged to the owner as a debt that delays its next barrier entry.
	ServiceCost vtime.Time
	// BarrierBase and BarrierPerLevel give the dissemination barrier cost
	// base + levels·log₂(n).
	BarrierBase     vtime.Time
	BarrierPerLevel vtime.Time
	// LoadFactor inflates message latency by 1 + LoadFactor·(epoch
	// messages / threads) — a bulk contention model.
	LoadFactor float64
	// JitterPct adds deterministic pseudo-random jitter of ±JitterPct to
	// compute and message costs, imitating real-machine variability.
	JitterPct float64
	// Seed drives the jitter stream.
	Seed uint64
}

// CM5 returns the comparator tuned with the published CM-5
// characteristics (Kwan/Totty/Reed and the CM-5 technical summary): ~2.4×
// the Sun 4 scalar speed, ~34 µs round-trip active-message latency for
// small requests, 8.5 MB/s point-to-point bandwidth, and a fast
// hardware-assisted control-network barrier. The magnitudes deliberately
// match the same published sources the Table 3 extrapolation parameters
// come from — the comparison then probes the *structural* differences
// (bulk contention, service debt, barrier shape, jitter), as comparing
// against a real machine parameterized by the same documents would.
func CM5() Config {
	return Config{
		FlopScale:       0.41,
		MsgBase:         17 * vtime.Microsecond,
		PerByte:         vtime.FromMicros(0.118),
		ServiceCost:     5 * vtime.Microsecond,
		BarrierBase:     12 * vtime.Microsecond,
		BarrierPerLevel: 4 * vtime.Microsecond,
		LoadFactor:      0.04,
		JitterPct:       0.02,
		Seed:            0xc35,
	}
}

// Result is the comparator's predicted run.
type Result struct {
	// TotalTime is the simulated parallel execution time.
	TotalTime vtime.Time
	// PerThread is each thread's finish time.
	PerThread []vtime.Time
	// Messages is the total remote requests processed.
	Messages int64
	// Barriers is the number of global barriers.
	Barriers int
}

// Run simulates the measurement trace on the direct machine model. The
// trace must come from the instrumented 1-processor run (the same input
// the ExtraP pipeline consumes).
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	if cfg.FlopScale < 0 || cfg.LoadFactor < 0 || cfg.JitterPct < 0 {
		return nil, fmt.Errorf("direct: negative parameter in %+v", cfg)
	}
	pt, err := translate.Translate(tr)
	if err != nil {
		return nil, err
	}
	n := pt.NumThreads
	jitter := vtime.NewRand(cfg.Seed)
	jit := func(t vtime.Time) vtime.Time {
		if cfg.JitterPct == 0 {
			return t
		}
		f := 1 + cfg.JitterPct*(2*jitter.Float64()-1)
		return t.Scale(f)
	}

	// Split each thread's events into barrier epochs: the segments
	// between consecutive barrier entries. All threads have the same
	// epoch count (global barriers).
	type cursor struct {
		evs  []trace.Event
		pos  int
		now  vtime.Time
		prev vtime.Time // translated time of previous event
		debt vtime.Time // accumulated service work owed before next entry
	}
	cur := make([]*cursor, n)
	for i := range cur {
		c := &cursor{evs: pt.Threads[i]}
		if len(c.evs) > 0 {
			c.prev = c.evs[0].Time
		}
		cur[i] = c
	}

	res := &Result{PerThread: make([]vtime.Time, n), Barriers: pt.Barriers}
	levels := log2ceil(n)

	for epoch := 0; ; epoch++ {
		// Pass 1: count the epoch's messages for the bulk load model.
		var epochMsgs int64
		for _, c := range cur {
			for p := c.pos; p < len(c.evs); p++ {
				e := c.evs[p]
				if e.Kind == trace.KindBarrierEntry {
					break
				}
				if e.IsRemote() {
					epochMsgs++
				}
			}
		}
		load := 1.0
		if n > 0 {
			load = 1 + cfg.LoadFactor*float64(epochMsgs)/float64(n)
		}

		// Pass 2: advance every thread to its next barrier entry (or to
		// the end of its trace).
		anyBarrier := false
		var maxEntry vtime.Time
		for ti, c := range cur {
			atBarrier := false
			for c.pos < len(c.evs) {
				e := c.evs[c.pos]
				delta := (e.Time - c.prev).Scale(cfg.FlopScale)
				c.now += jit(delta)
				c.prev = e.Time
				switch e.Kind {
				case trace.KindBarrierEntry:
					c.pos++
					atBarrier = true
				case trace.KindRemoteRead:
					lat := cfg.MsgBase*2 + vtime.Time(e.Arg1)*cfg.PerByte
					c.now += jit(lat.Scale(load))
					cur[e.Arg0].debt += cfg.ServiceCost
					res.Messages++
					c.pos++
				case trace.KindRemoteWrite:
					lat := cfg.MsgBase + vtime.Time(e.Arg1)*cfg.PerByte
					c.now += jit(lat.Scale(load))
					cur[e.Arg0].debt += cfg.ServiceCost
					res.Messages++
					c.pos++
				default:
					c.pos++
				}
				if atBarrier {
					break
				}
			}
			if atBarrier {
				anyBarrier = true
				// Service debt delays the barrier entry: the requests the
				// thread handled had to run on its processor.
				c.now += c.debt
				c.debt = 0
				if c.now > maxEntry {
					maxEntry = c.now
				}
			} else {
				res.PerThread[ti] = c.now
			}
		}
		if !anyBarrier {
			break
		}
		// Dissemination barrier: release log₂(n) exchange rounds after
		// the last arrival; everyone leaves together and consumes the
		// barrier-exit event.
		release := maxEntry + cfg.BarrierBase + vtime.Time(levels)*cfg.BarrierPerLevel
		for _, c := range cur {
			c.now = release
			if c.pos < len(c.evs) && c.evs[c.pos].Kind == trace.KindBarrierExit {
				c.prev = c.evs[c.pos].Time
				c.pos++
			}
		}
	}

	for _, t := range res.PerThread {
		if t > res.TotalTime {
			res.TotalTime = t
		}
	}
	return res, nil
}

// log2ceil returns ceil(log2(n)) for n ≥ 1.
func log2ceil(n int) int {
	d := 0
	for 1<<d < n {
		d++
	}
	return d
}
