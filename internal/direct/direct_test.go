package direct

import (
	"testing"

	"extrap/internal/pcxx"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// measure runs a simple program and returns its trace.
func measure(t *testing.T, n int, body func(*pcxx.Thread)) *trace.Trace {
	t.Helper()
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(n))
	tr, err := rt.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// commProgram builds a program with per-thread compute and one remote
// read each.
func commProgram(t *testing.T, n int, compute vtime.Time) *trace.Trace {
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(n))
	c := pcxx.PerThread[float64](rt, "c", 256)
	tr, err := rt.Run(func(th *pcxx.Thread) {
		*c.Local(th, th.ID()) = 1
		th.Barrier()
		th.Compute(compute)
		_ = c.Read(th, (th.ID()+1)%n)
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestZeroConfigEqualsIdealTime(t *testing.T) {
	tr := measure(t, 4, func(th *pcxx.Thread) {
		th.Compute(vtime.Time(th.ID()+1) * 100 * vtime.Microsecond)
		th.Barrier()
	})
	cfg := Config{FlopScale: 1}
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With all costs zero the comparator reduces to the ideal parallel
	// time: max compute = 400µs.
	if res.TotalTime != 400*vtime.Microsecond {
		t.Fatalf("TotalTime = %v, want 400µs", res.TotalTime)
	}
	if res.Barriers != 1 {
		t.Fatalf("Barriers = %d", res.Barriers)
	}
}

func TestFlopScale(t *testing.T) {
	tr := measure(t, 2, func(th *pcxx.Thread) {
		th.Compute(100 * vtime.Microsecond)
		th.Barrier()
	})
	half, err := Run(tr, Config{FlopScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(tr, Config{FlopScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if half.TotalTime*2 != full.TotalTime {
		t.Fatalf("scaling broken: %v vs %v", half.TotalTime, full.TotalTime)
	}
}

func TestMessageCosts(t *testing.T) {
	tr := commProgram(t, 2, 10*vtime.Microsecond)
	base, err := Run(tr, Config{FlopScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := Run(tr, Config{FlopScale: 1, MsgBase: 50 * vtime.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if costly.TotalTime <= base.TotalTime {
		t.Fatalf("message cost had no effect: %v vs %v", costly.TotalTime, base.TotalTime)
	}
	if costly.Messages != 2 {
		t.Fatalf("Messages = %d, want 2", costly.Messages)
	}
}

func TestBarrierCostScalesWithLog(t *testing.T) {
	cost := func(n int) vtime.Time {
		tr := measure(t, n, func(th *pcxx.Thread) { th.Barrier() })
		res, err := Run(tr, Config{FlopScale: 1,
			BarrierBase:     10 * vtime.Microsecond,
			BarrierPerLevel: 5 * vtime.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTime
	}
	// Dissemination barrier: base + levels·log2(n).
	if got, want := cost(2), 15*vtime.Microsecond; got != want {
		t.Errorf("n=2: %v, want %v", got, want)
	}
	if got, want := cost(16), 30*vtime.Microsecond; got != want {
		t.Errorf("n=16: %v, want %v", got, want)
	}
}

func TestServiceDebtDelaysOwner(t *testing.T) {
	// Thread 1 reads thread 0's element before the barrier; with a
	// service cost, thread 0's barrier entry is delayed by the debt.
	tr := commProgram(t, 2, 10*vtime.Microsecond)
	base, err := Run(tr, Config{FlopScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	debt, err := Run(tr, Config{FlopScale: 1, ServiceCost: 40 * vtime.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if debt.TotalTime <= base.TotalTime {
		t.Fatalf("service debt had no effect: %v vs %v", debt.TotalTime, base.TotalTime)
	}
}

func TestLoadFactorInflatesBusyEpochs(t *testing.T) {
	tr := commProgram(t, 8, 10*vtime.Microsecond)
	calm, err := Run(tr, Config{FlopScale: 1, MsgBase: 20 * vtime.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Run(tr, Config{FlopScale: 1, MsgBase: 20 * vtime.Microsecond, LoadFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalTime <= calm.TotalTime {
		t.Fatalf("load factor had no effect: %v vs %v", loaded.TotalTime, calm.TotalTime)
	}
}

func TestJitterDeterministic(t *testing.T) {
	tr := commProgram(t, 4, 100*vtime.Microsecond)
	cfg := CM5()
	a, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime {
		t.Fatalf("same-seed runs differ: %v vs %v", a.TotalTime, b.TotalTime)
	}
	cfg.Seed++
	c, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalTime == a.TotalTime {
		t.Error("different seeds produced identical jittered results")
	}
}

func TestRejectsNegativeConfig(t *testing.T) {
	tr := measure(t, 2, func(th *pcxx.Thread) { th.Barrier() })
	if _, err := Run(tr, Config{FlopScale: -1}); err == nil {
		t.Error("negative FlopScale accepted")
	}
}

func TestRejectsMalformedTrace(t *testing.T) {
	bad := trace.New(2)
	bad.Append(trace.Event{Kind: trace.KindBarrierExit, Thread: 0})
	if _, err := Run(bad, CM5()); err == nil {
		t.Error("malformed trace accepted")
	}
}

func TestCM5PresetRuns(t *testing.T) {
	tr := commProgram(t, 8, 500*vtime.Microsecond)
	res, err := Run(tr, CM5())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no time simulated")
	}
	for i, ft := range res.PerThread {
		if ft <= 0 || ft > res.TotalTime {
			t.Errorf("thread %d finish %v out of range", i, ft)
		}
	}
}
