package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Columns: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("alpha", 1.5)
	tab.AddRow("beta-very-long-name", 42.0)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "1.500", "42", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: the header and first row start their second column
	// at the same offset.
	lines := strings.Split(out, "\n")
	hdr, sep := lines[1], lines[2]
	if len(sep) < len("name") {
		t.Fatalf("separator line too short: %q", sep)
	}
	if strings.Index(hdr, "value") < 0 {
		t.Fatalf("header %q", hdr)
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{Columns: []string{"a", "b"}}
	tab.AddRow(1, 2)
	tab.AddRow("x", "y")
	var buf bytes.Buffer
	tab.CSV(&buf)
	want := "a,b\n1,2\nx,y\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		1.5:    "1.500",
		-3:     "-3",
		0.3333: "0.333",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestFigureTable(t *testing.T) {
	f := Figure{
		Title: "speedups", XLabel: "procs", YLabel: "speedup",
		X: []int{1, 2, 4},
	}
	f.Add("embar", []float64{1, 2, 4})
	f.Add("grid", []float64{1, 1.5}) // short series: padded cell
	tab := f.Table()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Columns[0] != "procs" || tab.Columns[1] != "embar" {
		t.Fatalf("columns = %v", tab.Columns)
	}
	if tab.Rows[2][2] != "" {
		t.Errorf("missing value should render empty, got %q", tab.Rows[2][2])
	}
}

func TestFigureRenderChart(t *testing.T) {
	f := Figure{
		Title: "demo", XLabel: "procs", YLabel: "ms",
		X: []int{1, 2, 4, 8},
	}
	f.Add("one", []float64{1, 2, 3, 4})
	f.Add("two", []float64{4, 3, 2, 1})
	var buf bytes.Buffer
	f.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "A = one") || !strings.Contains(out, "B = two") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Error("marks missing from chart")
	}
	// The axis shows the x values.
	if !strings.Contains(out, "8") {
		t.Error("x axis missing")
	}
}

func TestFigureChartDegenerateValues(t *testing.T) {
	f := Figure{Title: "flat", XLabel: "x", YLabel: "y", X: []int{1, 2}}
	f.Add("const", []float64{5, 5})
	var buf bytes.Buffer
	f.Render(&buf) // must not divide by zero on a flat series
	if buf.Len() == 0 {
		t.Fatal("nothing rendered")
	}

	empty := Figure{Title: "empty", X: nil}
	var buf2 bytes.Buffer
	empty.renderChart(&buf2) // no series: chart silently skipped
}

func TestFigureSVG(t *testing.T) {
	f := Figure{
		Title: "Speedup & <test>", XLabel: "procs", YLabel: "speedup",
		X: []int{1, 2, 4, 8},
	}
	f.Add("embar", []float64{1, 2, 3.9, 7.8})
	f.Add("grid", []float64{1, 1, 2.8, 2.5})
	var buf bytes.Buffer
	if err := f.SVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "embar", "grid",
		"Speedup &amp; &lt;test&gt;"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two series → two polylines.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	// Eight data points → eight circles.
	if got := strings.Count(out, "<circle"); got != 8 {
		t.Errorf("circles = %d, want 8", got)
	}
}

func TestFigureSVGDegenerate(t *testing.T) {
	// Flat series and single x value must not produce NaN coordinates.
	f := Figure{Title: "flat", XLabel: "x", YLabel: "y", X: []int{1}}
	f.Add("only", []float64{5})
	var buf bytes.Buffer
	if err := f.SVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("SVG contains NaN coordinates")
	}
}
