package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// SVG renders the figure as a self-contained SVG line chart — the closest
// this repository gets to the paper's actual figures. Stdlib only: the
// markup is assembled by hand.
//
// Layout: margins around a plot area; x positions are evenly spaced over
// the figure's X values (the paper's processor axes are categorical
// 1,2,4,8,16,32 ladders, so even spacing matches them); y is linear from
// 0 (or the data minimum, if negative) to the data maximum.
func (f *Figure) SVG(w io.Writer) error {
	const (
		width, height = 640, 400
		ml, mr        = 70, 160 // left/right margins (right holds the legend)
		mt, mb        = 40, 50
	)
	pw, ph := width-ml-mr, height-mt-mb

	lo, hi := 0.0, math.Inf(-1)
	for _, s := range f.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			hi = math.Max(hi, v)
			lo = math.Min(lo, v)
		}
	}
	if !(hi > lo) {
		hi = lo + 1
	}

	xPos := func(i int) float64 {
		if len(f.X) <= 1 {
			return float64(ml + pw/2)
		}
		return float64(ml) + float64(i)*float64(pw)/float64(len(f.X)-1)
	}
	yPos := func(v float64) float64 {
		return float64(mt) + (1-(v-lo)/(hi-lo))*float64(ph)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		ml, escapeXML(f.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", ml, mt, ml, mt+ph)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", ml, mt+ph, ml+pw, mt+ph)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		ml+pw/2, height-12, escapeXML(f.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		mt+ph/2, mt+ph/2, escapeXML(f.YLabel))

	// Y grid lines and labels (5 ticks).
	for i := 0; i <= 4; i++ {
		v := lo + (hi-lo)*float64(i)/4
		y := yPos(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", ml, y, ml+pw, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			ml-6, y+4, formatTick(v))
	}
	// X labels.
	for i, x := range f.X {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%d</text>`+"\n",
			xPos(i), mt+ph+18, x)
	}

	colors := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
		"#8c564b", "#17becf", "#7f7f7f", "#bcbd22"}
	for si, s := range f.Series {
		color := colors[si%len(colors)]
		var pts []string
		for i, v := range s.Values {
			if i >= len(f.X) || math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xPos(i), yPos(v)))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, p := range pts {
			var px, py float64
			fmt.Sscanf(p, "%f,%f", &px, &py)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px, py, color)
		}
		// Legend entry.
		ly := mt + 14 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			ml+pw+10, ly, ml+pw+30, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			ml+pw+36, ly+4, escapeXML(s.Name))
	}
	fmt.Fprintln(&b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// escapeXML escapes the five XML special characters.
func escapeXML(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
