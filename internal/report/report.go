// Package report renders experiment results as aligned ASCII tables,
// simple multi-series ASCII charts, and CSV — the output formats of the
// experiment drivers and the CLI.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = displayWidth(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && displayWidth(c) > widths[i] {
				widths[i] = displayWidth(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - displayWidth(c)
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values (no quoting of commas:
// cells are numeric or simple identifiers by construction).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

// displayWidth approximates the rendered width (rune count).
func displayWidth(s string) int { return len([]rune(s)) }

// NamedSeries is one labelled line of a figure.
type NamedSeries struct {
	Name   string
	Values []float64
}

// Figure is a multi-series plot over a shared integer x-axis (processor
// counts in every experiment here).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []int
	Series []NamedSeries
	Notes  []string
}

// Add appends a series.
func (f *Figure) Add(name string, values []float64) {
	f.Series = append(f.Series, NamedSeries{Name: name, Values: values})
}

// Table converts the figure into its tabular form (x in the first
// column, one column per series).
func (f *Figure) Table() Table {
	t := Table{Title: f.Title, Columns: append([]string{f.XLabel}, seriesNames(f.Series)...)}
	for i, x := range f.X {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range f.Series {
			if i < len(s.Values) {
				row = append(row, trimFloat(s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = f.Notes
	return t
}

// Render writes the figure as a table followed by an ASCII chart.
func (f *Figure) Render(w io.Writer) {
	tb := f.Table()
	tb.Render(w)
	f.renderChart(w)
}

// renderChart draws a compact ASCII chart: one letter per series.
func (f *Figure) renderChart(w io.Writer) {
	const height = 12
	if len(f.Series) == 0 || len(f.X) == 0 {
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	cols := len(f.X)
	colW := 6
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*colW))
	}
	for si, s := range f.Series {
		mark := byte('A' + si%26)
		for i, v := range s.Values {
			if i >= cols || math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			r := int((v - lo) / (hi - lo) * float64(height-1))
			row := height - 1 - r
			col := i*colW + colW/2
			grid[row][col] = mark
		}
	}
	fmt.Fprintf(w, "%s (%s: %.4g..%.4g)\n", f.Title, f.YLabel, lo, hi)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n   ", strings.Repeat("-", cols*colW))
	for _, x := range f.X {
		fmt.Fprintf(w, "%-*d", colW, x)
	}
	fmt.Fprintln(w)
	for si, s := range f.Series {
		fmt.Fprintf(w, "   %c = %s\n", 'A'+si%26, s.Name)
	}
	fmt.Fprintln(w)
}

func seriesNames(ss []NamedSeries) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}
