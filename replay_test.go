package extrap

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"extrap/internal/benchmarks"
	"extrap/internal/compose"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

// encodeKernel measures a registered benchmark at the given size and
// thread count and returns its XTRP2 encoding.
func encodeKernel(t *testing.T, name string, size benchmarks.Size, threads int) []byte {
	t.Helper()
	b, err := benchmarks.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.Measure(b.Factory(size)(threads), core.MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary2(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// bothModes extrapolates enc under cfg in event and pattern replay mode
// and asserts the predictions are byte-identical (the tentpole
// invariant). It returns the pattern-mode prediction.
func bothModes(t *testing.T, enc []byte, cfg sim.Config) *core.Prediction {
	t.Helper()
	cfg.Replay = sim.ReplayEvent
	want, err := core.ExtrapolateEncoded(context.Background(), enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replay = sim.ReplayPattern
	got, err := core.ExtrapolateEncoded(context.Background(), enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pattern replay diverged from event replay:\n  pattern: %+v\n  event:   %+v", got.Result, want.Result)
	}
	return got
}

// TestReplayEquivalenceMatrix sweeps kernels × machine models × barrier
// algorithms × processor mappings and asserts pattern-native replay
// (with fast-forward enabled) produces predictions byte-identical to
// flat event-by-event replay in every cell.
func TestReplayEquivalenceMatrix(t *testing.T) {
	kernels := []struct {
		name string
		size benchmarks.Size
	}{
		{"mgrid", benchmarks.Size{N: 8, Iters: 12}},
		{"grid", benchmarks.Size{N: 16, Iters: 20}},
		{"cyclic", benchmarks.Size{N: 64, Iters: 8}},
		{"embar", benchmarks.Size{N: 13}},
	}
	machines := []string{"generic-dm", "cm5", "shared-mem"}
	const threads = 8
	for _, k := range kernels {
		enc := encodeKernel(t, k.name, k.size, threads)
		for _, mn := range machines {
			env, err := machine.ByName(mn)
			if err != nil {
				t.Fatal(err)
			}
			t.Run(k.name+"/"+mn, func(t *testing.T) {
				bothModes(t, enc, env.Config)
			})
		}
		// Barrier algorithms and placement/multiplexing variants on the
		// generic distributed-memory model.
		base := machine.GenericDM().Config
		for _, alg := range []sim.BarrierAlgorithm{sim.LinearBarrier, sim.TreeBarrier, sim.HardwareBarrier} {
			cfg := base
			cfg.Barrier.Algorithm = alg
			if alg == sim.HardwareBarrier {
				cfg.Barrier.HardwareTime = 3 * vtime.Microsecond
			}
			t.Run(k.name+"/barrier-"+alg.String(), func(t *testing.T) {
				bothModes(t, enc, cfg)
			})
		}
		multi := base
		multi.Procs = threads / 2
		multi.Placement = sim.CyclicPlacement
		multi.ContextSwitchTime = 5 * vtime.Microsecond
		t.Run(k.name+"/multiplexed", func(t *testing.T) {
			bothModes(t, enc, multi)
		})
	}
}

// TestReplayEquivalenceBatch asserts the batch kernel honors the replay
// mode uniformly: a multi-config batch answered in pattern mode equals
// the same batch answered in event mode, cell for cell.
func TestReplayEquivalenceBatch(t *testing.T) {
	enc := encodeKernel(t, "grid", benchmarks.Size{N: 16, Iters: 20}, 8)
	mk := func(m sim.ReplayMode) []sim.Config {
		a := machine.GenericDM().Config
		b := a
		b.MipsRatio = 2.0
		c := a
		c.Barrier.Algorithm = sim.TreeBarrier
		cfgs := []sim.Config{a, b, c}
		for i := range cfgs {
			cfgs[i].Replay = m
		}
		return cfgs
	}
	want, err := core.ExtrapolateEncodedBatch(context.Background(), enc, mk(sim.ReplayEvent))
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.ExtrapolateEncodedBatch(context.Background(), enc, mk(sim.ReplayPattern))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("batched pattern replay diverged from batched event replay")
	}
}

// TestReplayEquivalenceComposed runs every composed-workload preset —
// including the imbalanced farm-stencil — through both replay modes.
// Imbalanced workloads are exactly the shape whose steady state is
// never a pure time-shift, so these also pin down that the fallback
// path (not a wrong fast-forward) handles them.
func TestReplayEquivalenceComposed(t *testing.T) {
	for _, p := range compose.Presets() {
		w := p.Workload()
		sz := w.DefaultSize()
		tr, err := core.Measure(w.Factory(sz)(8), core.MeasureOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteBinary2(&buf, tr); err != nil {
			t.Fatal(err)
		}
		t.Run(w.Name(), func(t *testing.T) {
			bothModes(t, buf.Bytes(), machine.GenericDM().Config)
		})
	}
}

// bigElem is a collection element large enough for partial transfers.
type bigElem [4096]byte

// adversarialTrace builds a trace that mines into patterns but whose
// engine-level steady state is NOT a pure time-shift, so the
// fast-forward probe must reject it rather than skip unsoundly.
func adversarialTrace(t *testing.T, variant string) []byte {
	t.Helper()
	const threads = 8
	pcfg := pcxx.DefaultConfig(threads)
	pcfg.SizeMode = pcxx.ActualSize
	rt := pcxx.NewRuntime(pcfg)
	c := pcxx.PerThread[bigElem](rt, "buf", 4096)
	var body func(th *pcxx.Thread)
	switch variant {
	case "growing-reads":
		// Transfer size grows by one byte per iteration: the delta
		// rows stay perfectly linear (so the miner compresses the loop
		// into one repeat op), but each iteration's network cost
		// differs — the steady state is never a pure time-shift, and
		// the drifting size register shows up as an exact-class
		// fingerprint slot that can never match.
		body = func(th *pcxx.Thread) {
			for i := 0; i < 160; i++ {
				th.Compute(10 * vtime.Microsecond)
				_ = c.ReadPart(th, (th.ID()+1)%threads, int64(64+i))
				th.Barrier()
			}
		}
	case "late-writes":
		// A pre-loop burst of large remote writes whose deliveries
		// drain slowly through the network DURING the loop: early
		// iteration boundaries see a shrinking in-flight population,
		// so probes must fail until the last late message lands.
		body = func(th *pcxx.Thread) {
			var v bigElem
			for j := 0; j < 20; j++ {
				c.Write(th, (th.ID()+1+j%4)%threads, v)
			}
			for i := 0; i < 160; i++ {
				th.Compute(5 * vtime.Microsecond)
				_ = c.ReadPart(th, (th.ID()+1)%threads, 64)
				th.Barrier()
			}
		}
	default:
		t.Fatalf("unknown variant %q", variant)
	}
	tr, err := rt.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary2(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReplayFallbackAdversarial drives traces engineered to defeat the
// steady-state check — per-iteration drift in transfer sizes, and a
// late-message regime where pre-loop sends land many pattern iterations
// later — and asserts two things: predictions remain byte-identical to
// event replay, and the engine takes the fallback path (fallback
// counter advances) instead of fast-forwarding through a lying
// fingerprint.
func TestReplayFallbackAdversarial(t *testing.T) {
	slow := machine.GenericDM().Config
	slow.Comm.ByteTransferTime = 5 * vtime.Microsecond
	slow.Comm.RecvOccupancy = 200 * vtime.Microsecond
	cases := []struct {
		name     string
		cfg      sim.Config
		wantFwd  bool // fast-forward expected once the transient clears
		banFwd   bool // fast-forward must never engage
		minFalls uint64
	}{
		// Every probe must be rejected: the state drifts forever.
		{name: "growing-reads", cfg: machine.GenericDM().Config, banFwd: true, minFalls: 5},
		// Probes fail while the late writes drain, then converge: the
		// fallback path hands over to a genuine steady state.
		{name: "late-writes", cfg: slow, wantFwd: true, minFalls: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc := adversarialTrace(t, tc.name)
			before := sim.ReadReplayCounters()
			bothModes(t, enc, tc.cfg)
			after := sim.ReadReplayCounters()
			falls := after.Fallbacks - before.Fallbacks
			fwds := after.FastForwards - before.FastForwards
			if falls < tc.minFalls {
				t.Errorf("fallbacks delta = %d, want ≥ %d (attempts delta = %d)",
					falls, tc.minFalls, after.Attempts-before.Attempts)
			}
			if tc.banFwd && fwds != 0 {
				t.Errorf("fast-forward engaged %d times on a never-steady trace", fwds)
			}
			if tc.wantFwd && fwds == 0 {
				t.Errorf("fast-forward never engaged after the transient cleared")
			}
		})
	}
}

// TestReplayPhaseSwitchover: a trace with two long loop phases of
// different communication structure. The fast-forward state must reset
// cleanly at the switchover — skipping within each phase, never across
// it — with predictions byte-identical to event replay.
func TestReplayPhaseSwitchover(t *testing.T) {
	const threads = 8
	rt := pcxx.NewRuntime(pcxx.DefaultConfig(threads))
	c := pcxx.PerThread[float64](rt, "x", 8)
	tr, err := rt.Run(func(th *pcxx.Thread) {
		for i := 0; i < 160; i++ {
			th.Compute(20 * vtime.Microsecond)
			_ = c.Read(th, (th.ID()+1)%threads)
			th.Barrier()
		}
		for i := 0; i < 160; i++ {
			th.Compute(5 * vtime.Microsecond)
			_ = c.Read(th, (th.ID()+3)%threads)
			_ = c.Read(th, (th.ID()+5)%threads)
			th.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary2(&buf, tr); err != nil {
		t.Fatal(err)
	}
	before := sim.ReadReplayCounters()
	bothModes(t, buf.Bytes(), machine.GenericDM().Config)
	after := sim.ReadReplayCounters()
	if fwds := after.FastForwards - before.FastForwards; fwds < 2 {
		t.Errorf("fast-forwards delta = %d, want ≥ 2 (one per phase)", fwds)
	}
}

// pollCountingCtx counts Err polls and starts failing after tripAt
// polls (tripAt < 0 never fails) — a deterministic stand-in for a
// deadline firing mid-simulation.
type pollCountingCtx struct {
	polls  int
	tripAt int
	done   chan struct{}
}

func (c *pollCountingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *pollCountingCtx) Done() <-chan struct{}       { return c.done }
func (c *pollCountingCtx) Value(any) any               { return nil }
func (c *pollCountingCtx) Err() error {
	if c.polls++; c.tripAt >= 0 && c.polls > c.tripAt {
		return context.DeadlineExceeded
	}
	return nil
}

// TestReplayCancellationBudget: fast-forward must not stretch the
// engine's cancellation latency — the kernel polls the context at the
// same 8192-event budget as event replay, plus once per fast-forward
// batch. Whatever the total number of polls a pattern-mode run makes,
// a context that starts failing at ANY of those polls must abort the
// run: there is no window a skip can hide in.
func TestReplayCancellationBudget(t *testing.T) {
	enc := encodeKernel(t, "mgrid", benchmarks.Size{N: 16, Iters: 240}, 8)
	cfg := machine.GenericDM().Config
	cfg.Replay = sim.ReplayPattern

	// Count the polls of a healthy full run.
	counter := &pollCountingCtx{tripAt: -1, done: make(chan struct{})}
	if _, err := core.ExtrapolateEncoded(counter, enc, cfg); err != nil {
		t.Fatal(err)
	}
	total := counter.polls
	if total < 2 {
		t.Fatalf("full run polled the context %d times; the cadence is broken", total)
	}
	// Trip at the first, a middle, and the last poll: every one must
	// surface as an abort — in particular the polls adjacent to the
	// fast-forward skip, which advances the virtual clock by orders of
	// magnitude more events than the 8192-event budget.
	for _, trip := range []int{1, total / 2, total - 1} {
		ctx := &pollCountingCtx{tripAt: trip, done: make(chan struct{})}
		if _, err := core.ExtrapolateEncoded(ctx, enc, cfg); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("trip at poll %d of %d: error = %v, want DeadlineExceeded", trip, total, err)
		}
	}
}
