module extrap

go 1.22
