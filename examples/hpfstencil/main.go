// Hpfstencil demonstrates the Section-5/6 claim that the extrapolation
// technique transfers to other language systems: an HPF-flavored front
// end (internal/hpfmini) with distributed arrays and FORALL statements
// runs a 1-D heat equation under BLOCK and CYCLIC distribution
// directives, and the same measure→translate→simulate pipeline predicts
// which directive to use on a distributed-memory machine.
//
//	go run ./examples/hpfstencil
package main

import (
	"fmt"
	"log"

	"extrap/internal/core"
	"extrap/internal/hpfmini"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/trace"
)

func main() {
	const (
		n       = 256
		threads = 8
		steps   = 50
	)

	measure := func(d hpfmini.Dist) (*trace.Trace, float64) {
		rt := pcxx.NewRuntime(pcxx.DefaultConfig(threads))
		m := hpfmini.NewMachine(rt)
		u := m.Array("u", n, d)
		var checksum float64
		tr, err := rt.Run(func(th *pcxx.Thread) {
			// !HPF$ DISTRIBUTE u(BLOCK) / u(CYCLIC)
			hpfmini.Fill(th, u, func(i int) float64 {
				if i == n/2 {
					return 100 // heat spike in the middle
				}
				return 0
			})
			for s := 0; s < steps; s++ {
				// FORALL (i=1:n-2) u(i) = .25*u(i-1)+.5*u(i)+.25*u(i+1)
				hpfmini.Forall(th, u, 3, func(r hpfmini.Reader, i int) float64 {
					if i == 0 || i == n-1 {
						return 0
					}
					return 0.25*r.At(u, i-1) + 0.5*r.At(u, i) + 0.25*r.At(u, i+1)
				})
			}
			checksum = hpfmini.Sum(th, u)
		})
		if err != nil {
			log.Fatal(err)
		}
		return tr, checksum
	}

	fmt.Printf("1-D heat equation, n=%d, %d FORALL steps, %d threads\n\n", n, steps, threads)
	env := machine.GenericDM().Config
	for _, d := range []hpfmini.Dist{hpfmini.Block, hpfmini.Cyclic} {
		tr, sum := measure(d)
		s := trace.ComputeStats(tr)
		out, err := core.Extrapolate(tr, env)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DISTRIBUTE u(%s):\n", d)
		fmt.Printf("  heat checksum (physics unchanged): %.6f\n", sum)
		fmt.Printf("  remote element reads:              %d\n", s.RemoteReads)
		fmt.Printf("  predicted time on generic-dm:      %v\n\n", out.Result.TotalTime)
	}
	fmt.Println("Same physics, same front end, one measurement each — the extrapolation")
	fmt.Println("tells the HPF programmer that BLOCK is the right directive here.")
}
