// Quickstart: the complete extrapolation pipeline in ~60 lines.
//
// We write a small data-parallel program against the pcxx runtime, measure
// it with 8 threads on one (virtual) processor, translate the trace, and
// predict its performance on two different target machines — without ever
// "running" it on either.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

func main() {
	const threads = 8

	// A toy stencil program: each thread owns one element; every step it
	// reads its ring neighbor, updates its element, and synchronizes.
	program := core.Program{
		Name:    "ring-stencil",
		Threads: threads,
		Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
			cells := pcxx.PerThread[float64](rt, "cells", 8)
			next := pcxx.PerThread[float64](rt, "next", 8)
			return func(t *pcxx.Thread) {
				*cells.Local(t, t.ID()) = float64(t.ID())
				t.Barrier()
				for step := 0; step < 50; step++ {
					nbr := cells.Read(t, (t.ID()+1)%threads) // remote read
					*next.Local(t, t.ID()) = 0.5 * (*cells.Local(t, t.ID()) + nbr)
					t.Flops(2000) // the step's computation
					t.Barrier()
					*cells.Local(t, t.ID()) = *next.Local(t, t.ID())
					t.Barrier()
				}
			}
		},
	}

	// Step 1: measure — an n-thread, 1-processor instrumented run.
	tr, err := core.Measure(program, core.MeasureOptions{})
	if err != nil {
		log.Fatal(err)
	}
	stats := trace.ComputeStats(tr)
	fmt.Printf("measurement: %d events, %d barriers, %d remote reads, 1-proc time %v\n",
		stats.Events, stats.Barriers, stats.RemoteReads, stats.Duration)

	// Steps 2+3: translate + simulate, for two very different targets.
	for _, env := range []machine.Env{machine.GenericDM(), machine.SharedMem()} {
		out, err := core.Extrapolate(tr, env.Config)
		if err != nil {
			log.Fatal(err)
		}
		r := out.Result
		fmt.Printf("\ntarget %q (%s):\n", env.Name, env.Description)
		fmt.Printf("  predicted time:   %v (ideal would be %v)\n",
			r.TotalTime, out.Parallel.Duration())
		fmt.Printf("  predicted speedup: %.2f of %d processors\n",
			stats.Duration.Seconds()/r.TotalTime.Seconds(), threads)
		fmt.Printf("  where the time goes: %v\n", metrics.ComputeBreakdown(r))
	}

	// Bonus: what if the target processor were 4× faster?
	cfg := machine.GenericDM().Config
	cfg.MipsRatio = 0.25
	out, err := core.Extrapolate(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a 4x faster processor (MipsRatio 0.25): %v — %s\n",
		out.Result.TotalTime,
		verdict(out.Result.TotalTime, vtime.Time(float64(stats.Duration)/float64(threads))))
}

func verdict(predicted, perfect vtime.Time) string {
	if predicted < 2*perfect {
		return "communication is not (yet) the bottleneck"
	}
	return "communication dominates; more processors will not help"
}
