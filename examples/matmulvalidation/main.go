// Matmulvalidation reproduces the Section 4.2 validation study in
// miniature: Matmul under several data distributions, extrapolated with
// the Table 3 CM-5 parameter set, compared against the independent direct
// CM-5 machine model. The question the paper asks: does the cheap
// extrapolation rank the distribution choices the same way the machine
// does, so a programmer can pick the right one without machine time?
//
//	go run ./examples/matmulvalidation
package main

import (
	"fmt"
	"log"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/direct"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/pcxx/dist"
	"extrap/internal/vtime"
)

func main() {
	size := benchmarks.Size{N: 48}
	combos := [][2]dist.Attr{
		{dist.Block, dist.Block},
		{dist.Block, dist.Whole},
		{dist.Whole, dist.Block},
		{dist.Cyclic, dist.Cyclic},
		{dist.Whole, dist.Whole},
	}
	procs := []int{4, 16}

	fmt.Printf("Matmul %d×%d: predicted (ExtraP, CM-5 parameters) vs actual (direct CM-5 model)\n", size.N, size.N)
	for _, n := range procs {
		fmt.Printf("\n%d processors:\n", n)
		type row struct {
			name      string
			pred, act vtime.Time
		}
		var rows []row
		for _, d := range combos {
			factory := benchmarks.MatmulFactory(size, d[0], d[1])
			tr, err := core.Measure(factory(n), core.MeasureOptions{SizeMode: pcxx.ActualSize})
			if err != nil {
				log.Fatal(err)
			}
			out, err := core.Extrapolate(tr, machine.CM5().Config)
			if err != nil {
				log.Fatal(err)
			}
			act, err := direct.Run(tr, direct.CM5())
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, row{
				name: fmt.Sprintf("(%s,%s)", d[0], d[1]),
				pred: out.Result.TotalTime,
				act:  act.TotalTime,
			})
		}
		bestPred, bestAct := 0, 0
		for i, r := range rows {
			if r.pred < rows[bestPred].pred {
				bestPred = i
			}
			if r.act < rows[bestAct].act {
				bestAct = i
			}
		}
		for i, r := range rows {
			marks := ""
			if i == bestPred {
				marks += "  ← predicted best"
			}
			if i == bestAct {
				marks += "  ← actual best"
			}
			fmt.Printf("  %-17s predicted %10v   actual %10v%s\n", r.name, r.pred, r.act, marks)
		}
		if bestPred == bestAct {
			fmt.Println("  extrapolation picked the machine's best distribution ✓")
		} else {
			penalty := float64(rows[bestPred].act-rows[bestAct].act) /
				float64(rows[bestAct].act) * 100
			fmt.Printf("  predicted best differs; costs %.1f%% over the true optimum\n", penalty)
		}
	}
}
