// Gridtuning replays the paper's Figure 5 performance-debugging session
// on the Grid benchmark, narrating each step of the investigation:
//
//  1. Grid's distributed-memory speedup flattens after 4 processors.
//  2. Raising bandwidth to shared-memory levels helps only partly.
//  3. An ideal (free communication) extrapolation shows good speedup is
//     possible, and the trace statistics rule out barriers (only ~650).
//  4. The real culprit: the measurement attributed whole-element
//     transfers (the compiler estimate) to each ghost-strip read.
//     Re-attributing actual sizes recovers the speedup.
//  5. Reducing start-up overhead improves it further.
//
// Every conclusion is reached from one-processor measurements plus
// simulation — no parallel machine involved, which is the point.
//
//	go run ./examples/gridtuning
package main

import (
	"fmt"
	"log"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

func main() {
	grid, err := benchmarks.ByName("grid")
	if err != nil {
		log.Fatal(err)
	}
	size := benchmarks.Size{N: 48, Iters: 120}
	procs := []int{1, 2, 4, 8, 16}

	speedups := func(mode pcxx.SizeMode, cfg sim.Config) []float64 {
		var base vtime.Time
		out := make([]float64, len(procs))
		for i, n := range procs {
			tr, err := core.Measure(grid.Factory(size)(n), core.MeasureOptions{SizeMode: mode})
			if err != nil {
				log.Fatal(err)
			}
			o, err := core.Extrapolate(tr, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				base = o.Result.TotalTime
			}
			out[i] = float64(base) / float64(o.Result.TotalTime)
		}
		return out
	}
	show := func(label string, sp []float64) {
		fmt.Printf("  %-34s", label)
		for i, s := range sp {
			fmt.Printf("  P%-2d %5.2f", procs[i], s)
		}
		fmt.Println()
	}

	fmt.Println("Step 1: Grid on the distributed-memory target (compiler-estimated sizes)")
	dm := machine.GenericDM().Config
	sp := speedups(pcxx.CompilerEstimate, dm)
	show("dm 20 MB/s:", sp)
	fmt.Println("  → speedup levels off; why?")

	fmt.Println("\nStep 2: raise the bandwidth to 200 MB/s (shared-memory class)")
	hb := dm
	hb.Comm.ByteTransferTime = 5 * vtime.Nanosecond
	show("dm 200 MB/s:", speedups(pcxx.CompilerEstimate, hb))
	fmt.Println("  → better, but still short of shared-memory results")

	fmt.Println("\nStep 3: extrapolate to an ideal environment and check the trace")
	show("ideal:", speedups(pcxx.CompilerEstimate, machine.Ideal().Config))
	tr, err := core.Measure(grid.Factory(size)(16), core.MeasureOptions{SizeMode: pcxx.CompilerEstimate})
	if err != nil {
		log.Fatal(err)
	}
	st := trace.ComputeStats(tr)
	fmt.Printf("  trace statistics at 16 threads: %d barriers, %d remote reads, %d bytes/read\n",
		st.Barriers, st.RemoteReads, st.RemoteBytes/maxi64(st.RemoteReads, 1))
	fmt.Println("  → not enough barriers to blame synchronization; look at transfer sizes")

	fmt.Println("\nStep 4: the compiler requests only boundary strips — use actual sizes")
	trA, err := core.Measure(grid.Factory(size)(16), core.MeasureOptions{SizeMode: pcxx.ActualSize})
	if err != nil {
		log.Fatal(err)
	}
	stA := trace.ComputeStats(trA)
	fmt.Printf("  actual transfer sizes: %d bytes/read (vs %d estimated)\n",
		stA.RemoteBytes/maxi64(stA.RemoteReads, 1), st.RemoteBytes/maxi64(st.RemoteReads, 1))
	show("dm 20 MB/s, actual sizes:", speedups(pcxx.ActualSize, dm))

	fmt.Println("\nStep 5: with transfer volume fixed, start-up overhead is next")
	ls := dm
	ls.Comm.StartupTime = 5 * vtime.Microsecond
	ls.Comm.MsgConstructTime = 2 * vtime.Microsecond
	show("actual sizes + low startup:", speedups(pcxx.ActualSize, ls))
	fmt.Println("\nAll of the above ran on one (virtual) processor — no parallel machine required.")
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
