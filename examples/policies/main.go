// Policies explores the runtime-system question of Figure 8: which remote
// data request service policy — no-interrupt, interrupt, or polling (and
// at which interval) — suits a given program on a given machine? The
// extrapolation answers per-program: one measurement of each benchmark,
// then one cheap simulation per candidate policy.
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/vtime"
)

func main() {
	policies := []struct {
		name string
		pol  sim.Policy
	}{
		{"no-interrupt", sim.Policy{Kind: sim.NoInterrupt, ServiceTime: 15 * vtime.Microsecond}},
		{"interrupt", sim.Policy{Kind: sim.Interrupt,
			InterruptOverhead: 10 * vtime.Microsecond, ServiceTime: 15 * vtime.Microsecond}},
		{"poll 100µs", poll(100)},
		{"poll 500µs", poll(500)},
		{"poll 1000µs", poll(1000)},
	}

	for _, benchName := range []string{"cyclic", "grid"} {
		b, err := benchmarks.ByName(benchName)
		if err != nil {
			log.Fatal(err)
		}
		size := quickSize(benchName)
		const n = 16

		// One measurement serves every policy question.
		tr, err := core.Measure(b.Factory(size)(n), core.MeasureOptions{SizeMode: pcxx.ActualSize})
		if err != nil {
			log.Fatal(err)
		}
		s := trace.ComputeStats(tr)
		fmt.Printf("%s at %d threads: %d remote reads, %d barriers\n",
			benchName, n, s.RemoteReads, s.Barriers)

		best := ""
		var bestT vtime.Time = vtime.Forever
		for _, p := range policies {
			cfg := machine.GenericDM().Config
			cfg.Comm.StartupTime = 100 * vtime.Microsecond // the Figure 8 setting
			cfg.Policy = p.pol
			out, err := core.Extrapolate(tr, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-13s %12v  (service work %v)\n",
				p.name, out.Result.TotalTime, out.Result.TotalService())
			if out.Result.TotalTime < bestT {
				bestT, best = out.Result.TotalTime, p.name
			}
		}
		fmt.Printf("  → best policy for %s here: %s\n\n", benchName, best)
	}
	fmt.Println("Program execution characteristics decide the winner — exactly the paper's point.")
}

func poll(intervalUs int) sim.Policy {
	return sim.Policy{
		Kind:         sim.Poll,
		PollInterval: vtime.Time(intervalUs) * vtime.Microsecond,
		PollOverhead: 2 * vtime.Microsecond,
		ServiceTime:  15 * vtime.Microsecond,
	}
}

func quickSize(name string) benchmarks.Size {
	if name == "cyclic" {
		return benchmarks.Size{N: 512, Iters: 16}
	}
	return benchmarks.Size{N: 48, Iters: 120}
}
