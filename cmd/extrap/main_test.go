package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd dispatches a CLI command in-process and returns its output.
func runCmd(t *testing.T, cmd string, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := dispatch(cmd, args, &buf); err != nil {
		t.Fatalf("extrap %s %v: %v", cmd, args, err)
	}
	return buf.String()
}

func TestList(t *testing.T) {
	out := runCmd(t, "list")
	for _, want := range []string{"benchmarks:", "grid", "environments:", "cm5", "experiments:", "fig4"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunStatsTranslateSimulateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.xtrp")
	out := runCmd(t, "run", "-bench", "grid", "-n", "4", "-size", "16", "-iters", "10",
		"-verify", "-o", path)
	if !strings.Contains(out, "wrote "+path) {
		t.Fatalf("run output: %q", out)
	}

	stats := runCmd(t, "stats", "-i", path)
	if !strings.Contains(stats, "threads=4") || !strings.Contains(stats, "barriers=") {
		t.Fatalf("stats output: %q", stats)
	}

	tl := runCmd(t, "translate", "-i", path)
	if !strings.Contains(tl, "ideal speedup") {
		t.Fatalf("translate output: %q", tl)
	}

	simOut := runCmd(t, "simulate", "-i", path, "-env", "cm5")
	for _, want := range []string{"environment: cm5", "compute", "ideal parallel time"} {
		if !strings.Contains(simOut, want) {
			t.Fatalf("simulate output missing %q: %q", want, simOut)
		}
	}
}

func TestRunTextFormat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.txt")
	runCmd(t, "run", "-bench", "cyclic", "-n", "2", "-size", "32", "-iters", "2",
		"-text", "-o", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "#xtrp text 1") {
		t.Fatalf("text trace header missing: %q", string(data[:40]))
	}
	// The text trace reads back through stats.
	stats := runCmd(t, "stats", "-i", path)
	if !strings.Contains(stats, "threads=2") {
		t.Fatalf("stats on text trace: %q", stats)
	}
}

func TestSimulateOverrides(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.xtrp")
	runCmd(t, "run", "-bench", "embar", "-n", "2", "-size", "8", "-o", path)

	base := runCmd(t, "simulate", "-i", path, "-env", "ideal")
	slow := runCmd(t, "simulate", "-i", path, "-env", "ideal", "-mips", "2.0")
	if base == slow {
		t.Error("-mips override had no effect on output")
	}
	pol := runCmd(t, "simulate", "-i", path, "-env", "generic-dm", "-policy", "poll", "-poll-interval", "50")
	if !strings.Contains(pol, "time=") {
		t.Fatalf("policy simulate output: %q", pol)
	}
}

func TestSimulateEmitTrace(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.xtrp")
	emitted := filepath.Join(dir, "extrap.xtrp")
	runCmd(t, "run", "-bench", "sort", "-n", "4", "-size", "64", "-o", src)
	out := runCmd(t, "simulate", "-i", src, "-env", "generic-dm", "-emit-trace", emitted)
	if !strings.Contains(out, "extrapolated trace written") {
		t.Fatalf("emit output: %q", out)
	}
	stats := runCmd(t, "stats", "-i", emitted)
	if !strings.Contains(stats, "msgs=") {
		t.Fatalf("extrapolated trace has no message events: %q", stats)
	}
}

// TestSimulateStreamMatchesInMemory: -stream runs the bounded-memory
// pipeline, and its report must be byte-identical to the in-memory
// path's for every output section (result, ideal time, breakdown).
func TestSimulateStreamMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.xtrp")
	runCmd(t, "run", "-bench", "grid", "-n", "4", "-size", "16", "-iters", "6", "-o", path)

	inMem := runCmd(t, "simulate", "-i", path, "-env", "cm5")
	streamed := runCmd(t, "simulate", "-i", path, "-env", "cm5", "-stream")
	if inMem != streamed {
		t.Errorf("-stream output differs from in-memory:\n--- in-memory ---\n%s\n--- stream ---\n%s", inMem, streamed)
	}

	// The emitted extrapolated traces must match too.
	emitMem := filepath.Join(dir, "mem.xtrp")
	emitStream := filepath.Join(dir, "stream.xtrp")
	runCmd(t, "simulate", "-i", path, "-env", "generic-dm", "-emit-trace", emitMem)
	runCmd(t, "simulate", "-i", path, "-env", "generic-dm", "-emit-trace", emitStream, "-stream")
	memBytes, err := os.ReadFile(emitMem)
	if err != nil {
		t.Fatal(err)
	}
	streamBytes, err := os.ReadFile(emitStream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memBytes, streamBytes) {
		t.Error("emitted traces differ between -stream and in-memory simulate")
	}

	// Text traces cannot stream (the codec is line-oriented, not
	// incremental): -stream must refuse rather than misparse.
	txt := filepath.Join(dir, "g.txt")
	runCmd(t, "run", "-bench", "grid", "-n", "2", "-size", "16", "-iters", "2", "-text", "-o", txt)
	var buf bytes.Buffer
	if err := dispatch("simulate", []string{"-i", txt, "-env", "cm5", "-stream"}, &buf); err == nil {
		t.Error("-stream accepted a text trace")
	}
}

func TestExperimentQuick(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := cmdExperiment([]string{"-quick", "-csv", dir, "table3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MipsRatio") {
		t.Fatalf("experiment output: %q", buf.String())
	}
	csvs, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(csvs) == 0 {
		t.Fatalf("no CSVs written: %v %v", csvs, err)
	}
}

func TestErrorPaths(t *testing.T) {
	var buf bytes.Buffer
	if err := dispatch("bogus", nil, &buf); err != errUnknownCommand {
		t.Errorf("unknown command: %v", err)
	}
	if err := dispatch("run", []string{}, &buf); err == nil {
		t.Error("run without -bench accepted")
	}
	if err := dispatch("stats", []string{}, &buf); err == nil {
		t.Error("stats without -i accepted")
	}
	if err := dispatch("stats", []string{"-i", "/nonexistent.xtrp"}, &buf); err == nil {
		t.Error("stats on missing file accepted")
	}
	if err := dispatch("simulate", []string{"-i", "/nonexistent.xtrp"}, &buf); err == nil {
		t.Error("simulate on missing file accepted")
	}
	if err := dispatch("experiment", []string{"fig99"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := dispatch("experiment", []string{}, &buf); err == nil {
		t.Error("experiment without id accepted")
	}
	if err := dispatch("run", []string{"-bench", "nosuch"}, &buf); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := dispatch("simulate", []string{"-i", "x", "-env", "nosuch"}, &buf); err == nil {
		t.Error("unknown environment accepted")
	}
}

func TestStatsRejectsCorruptTrace(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.xtrp")
	if err := os.WriteFile(bad, []byte("this is not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dispatch("stats", []string{"-i", bad}, &buf); err == nil {
		t.Error("corrupt trace accepted")
	}
}

func TestProfileCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.xtrp")
	runCmd(t, "run", "-bench", "grid", "-n", "4", "-size", "16", "-iters", "6", "-o", path)

	ideal := runCmd(t, "profile", "-i", path)
	if !strings.Contains(ideal, "idealized parallel execution") {
		t.Fatalf("profile output: %q", ideal)
	}
	pred := runCmd(t, "profile", "-i", path, "-env", "cm5")
	for _, want := range []string{"predicted execution", "phases (by total time):", "exchange", "costliest barriers"} {
		if !strings.Contains(pred, want) {
			t.Fatalf("profile -env output missing %q:\n%s", want, pred)
		}
	}
	var buf bytes.Buffer
	if err := dispatch("profile", []string{}, &buf); err == nil {
		t.Error("profile without -i accepted")
	}
	if err := dispatch("profile", []string{"-i", path, "-env", "nosuch"}, &buf); err == nil {
		t.Error("profile with unknown env accepted")
	}
}

func TestExperimentSVGOutput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := cmdExperiment([]string{"-quick", "-svg", dir, "fig5"}, &buf); err != nil {
		t.Fatal(err)
	}
	svgs, err := filepath.Glob(filepath.Join(dir, "*.svg"))
	if err != nil || len(svgs) == 0 {
		t.Fatalf("no SVGs written: %v %v", svgs, err)
	}
	data, err := os.ReadFile(svgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("output is not SVG")
	}
}

func TestTimelineCommand(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "g.xtrp")
	svgPath := filepath.Join(dir, "tl.svg")
	runCmd(t, "run", "-bench", "grid", "-n", "4", "-size", "16", "-iters", "6", "-o", tracePath)
	out := runCmd(t, "timeline", "-i", tracePath, "-env", "cm5", "-o", svgPath)
	if !strings.Contains(out, "compute=") || !strings.Contains(out, "barrier=") {
		t.Fatalf("timeline output: %q", out)
	}
	data, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("timeline did not write SVG")
	}
	var buf bytes.Buffer
	if err := dispatch("timeline", []string{}, &buf); err == nil {
		t.Error("timeline without -i accepted")
	}
}

func TestSweepCommand(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "c.xtrp")
	runCmd(t, "run", "-bench", "cyclic", "-n", "4", "-size", "64", "-iters", "4", "-o", tracePath)
	out := runCmd(t, "sweep", "-i", tracePath, "-param", "startup", "-values", "5,100")
	if !strings.Contains(out, "what-if sweep") || !strings.Contains(out, "1.00×") {
		t.Fatalf("sweep output: %q", out)
	}
	for _, p := range []string{"bandwidth", "mips", "service", "barrier-model"} {
		o := runCmd(t, "sweep", "-i", tracePath, "-param", p, "-values", "1,2")
		if !strings.Contains(o, "what-if") {
			t.Fatalf("sweep %s output: %q", p, o)
		}
	}
	var buf bytes.Buffer
	if err := dispatch("sweep", []string{"-i", tracePath, "-param", "nosuch"}, &buf); err == nil {
		t.Error("unknown sweep parameter accepted")
	}
	if err := dispatch("sweep", []string{"-i", tracePath, "-values", "abc"}, &buf); err == nil {
		t.Error("non-numeric sweep value accepted")
	}
	if err := dispatch("sweep", []string{"-i", tracePath, "-param", "bandwidth", "-values", "0"}, &buf); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestExportCommand(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "c.xtrp")
	runCmd(t, "run", "-bench", "cyclic", "-n", "3", "-size", "32", "-iters", "2", "-o", src)

	sddf := filepath.Join(dir, "c.sddf")
	out := runCmd(t, "export", "-i", src, "-format", "sddf", "-o", sddf)
	if !strings.Contains(out, "wrote "+sddf) {
		t.Fatalf("export output: %q", out)
	}
	data, err := os.ReadFile(sddf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "SDDF-A") {
		t.Error("not an SDDF export")
	}

	splitDir := filepath.Join(dir, "split")
	out = runCmd(t, "export", "-i", src, "-format", "text", "-split", splitDir)
	if !strings.Contains(out, "3 per-thread translated traces") {
		t.Fatalf("split output: %q", out)
	}
	files, _ := filepath.Glob(filepath.Join(splitDir, "thread-*.xtrp"))
	if len(files) != 3 {
		t.Fatalf("split wrote %d files", len(files))
	}
	// Split traces are partial by design (one thread's events), so the
	// full-trace validator rejects them; check they are non-empty binary
	// traces instead.
	data, err = os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 10 || string(data[:5]) != "XTRP1" {
		t.Fatalf("split file is not a binary trace (%d bytes)", len(data))
	}
	var buf bytes.Buffer
	if err := dispatch("export", []string{"-i", src, "-format", "bogus"}, &buf); err == nil {
		t.Error("unknown export format accepted")
	}
}

func TestCalibrateCommand(t *testing.T) {
	out := runCmd(t, "calibrate")
	for _, want := range []string{"this machine:", "MFLOPS", "MipsRatio host→sun4:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("calibrate output missing %q: %q", want, out)
		}
	}
}

// TestExperimentModeFlag: -mode plumbs through to the engine options —
// exact and empty normalize to the default, fitted selects the sparse
// path, and anything else is rejected before any work runs.
func TestExperimentModeFlag(t *testing.T) {
	cases := []struct {
		args    []string
		want    string
		wantErr bool
	}{
		{[]string{"table3"}, "", false},
		{[]string{"-mode", "exact", "table3"}, "", false},
		{[]string{"-mode", "fitted", "table3"}, "fitted", false},
		{[]string{"-mode", "approximate", "table3"}, "", true},
	}
	for _, tc := range cases {
		opts, id, _, _, _, _, err := parseExperimentFlags(tc.args)
		if tc.wantErr {
			if err == nil || !strings.Contains(err.Error(), "-mode") {
				t.Errorf("args %v: err = %v, want -mode error", tc.args, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("args %v: %v", tc.args, err)
			continue
		}
		if opts.FitMode != tc.want || id != "table3" {
			t.Errorf("args %v: FitMode %q id %q, want %q table3", tc.args, opts.FitMode, id, tc.want)
		}
	}
}

// TestExperimentFittedRuns: a quick fitted experiment runs end to end
// and renders the same table shape as the exact path.
func TestExperimentFittedRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := cmdExperiment([]string{"-quick", "-mode", "fitted", "fig6"}, &buf); err != nil {
		t.Fatal(err)
	}
	var exact bytes.Buffer
	if err := cmdExperiment([]string{"-quick", "fig6"}, &exact); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Count(buf.String(), "\n"), strings.Count(exact.String(), "\n"); got != want {
		t.Errorf("fitted output shape differs: %d lines vs exact %d", got, want)
	}
}

// TestExperimentWorkloadSweep: `-workload spec.json` synthesizes the
// composed program and prints a table that is byte-identical across
// worker counts and trace formats — the determinism CI diffs exactly
// this output.
func TestExperimentWorkloadSweep(t *testing.T) {
	spec := filepath.Join("..", "..", "internal", "compose", "testdata", "nested.json")
	runs := [][]string{
		{"-quick", "-workload", spec},
		{"-quick", "-workers", "4", "-batch", "8", "-workload", spec},
		{"-quick", "-trace-format", "xtrp1", "-workload", spec},
		{"-quick", "-trace-format", "xtrp2", "-workers", "4", "-workload", spec},
	}
	var want string
	for i, args := range runs {
		var buf bytes.Buffer
		if err := cmdExperiment(args, &buf); err != nil {
			t.Fatalf("args %v: %v", args, err)
		}
		if i == 0 {
			want = buf.String()
			if !strings.Contains(want, "workload  wl:") || !strings.Contains(want, "wl/v1|") {
				t.Fatalf("workload sweep output missing name/canonical header:\n%s", want)
			}
			continue
		}
		if buf.String() != want {
			t.Errorf("args %v: output differs from baseline:\n%s\nvs\n%s", args, buf.String(), want)
		}
	}
}

// TestExperimentWorkloadFlagErrors: -workload replaces the experiment
// id, and a bad spec file fails loudly.
func TestExperimentWorkloadFlagErrors(t *testing.T) {
	if _, _, _, _, _, _, err := parseExperimentFlags([]string{"-workload", "spec.json", "fig4"}); err == nil {
		t.Error("-workload plus an experiment id should be rejected")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"root":{"kind":"warp"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdExperiment([]string{"-workload", bad}, new(bytes.Buffer)); err == nil {
		t.Error("invalid workload spec should fail cmdExperiment")
	}
}
