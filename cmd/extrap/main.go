// Command extrap is the command-line front end of the performance
// extrapolation system: it measures benchmarks on the instrumented
// 1-processor runtime, translates and inspects traces, extrapolates them
// to target environments, and regenerates every table and figure of the
// paper's evaluation.
//
// Usage:
//
//	extrap list                              inventory of benchmarks, environments, experiments
//	extrap run -bench grid -n 8 -o g.xtrp    measure a benchmark, write the trace
//	extrap stats -i g.xtrp                   trace statistics
//	extrap translate -i g.xtrp               translation summary (ideal parallel time)
//	extrap simulate -i g.xtrp -env cm5       extrapolate a trace to a target environment
//	extrap experiment fig4                   regenerate a paper experiment (or "all")
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"extrap/internal/benchmarks"
	"extrap/internal/compose"
	"extrap/internal/core"
	"extrap/internal/experiments"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/profile"
	"extrap/internal/sim"
	"extrap/internal/store"
	"extrap/internal/timeline"
	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	if err := dispatch(os.Args[1], os.Args[2:], os.Stdout); err != nil {
		if err == errUnknownCommand {
			fmt.Fprintf(os.Stderr, "extrap: unknown command %q\n", os.Args[1])
			usage()
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "extrap:", err)
		os.Exit(1)
	}
}

// errUnknownCommand reports an unrecognized subcommand.
var errUnknownCommand = errors.New("unknown command")

// dispatch routes a subcommand; out receives the command's report output.
func dispatch(cmd string, args []string, out io.Writer) error {
	switch cmd {
	case "list":
		return cmdList(out)
	case "run":
		return cmdRun(args, out)
	case "stats":
		return cmdStats(args, out)
	case "translate":
		return cmdTranslate(args, out)
	case "simulate":
		return cmdSimulate(args, out)
	case "profile":
		return cmdProfile(args, out)
	case "timeline":
		return cmdTimeline(args, out)
	case "sweep":
		return cmdSweep(args, out)
	case "export":
		return cmdExport(args, out)
	case "calibrate":
		return cmdCalibrate(out)
	case "experiment":
		return cmdExperiment(args, out)
	case "serve":
		return cmdServe(args, out)
	case "-h", "--help", "help":
		usage()
		return nil
	}
	return errUnknownCommand
}

func usage() {
	fmt.Fprint(os.Stderr, `extrap — performance extrapolation of parallel programs

commands:
  list        benchmarks, environments, and experiments
  run         measure a benchmark on the 1-processor instrumented runtime
  stats       print statistics of a trace file
  translate   translate a measurement trace (report ideal parallel time)
  simulate    extrapolate a trace to a target environment
  profile     phase/barrier/communication profile of a (predicted) execution
  timeline    per-thread activity timeline (SVG) of a predicted execution
  sweep       what-if sweep of one environment parameter over a trace
  export      convert a trace (sddf interop format, per-thread splitting)
  calibrate   measure this machine's flop rate; derive MipsRatio vs the models
  experiment  regenerate a paper table/figure (fig4..fig9, table1..table3,
              ablation-*, or "all"), or sweep a composed workload spec
              (-workload spec.json)
  serve       run the extrapolation JSON-over-HTTP API (see README)

run 'extrap <command> -h' for per-command flags.
`)
}

func cmdList(out io.Writer) error {
	fmt.Fprintln(out, "benchmarks:")
	for _, b := range benchmarks.All() {
		d := b.DefaultSize()
		fmt.Fprintf(out, "  %-8s %s (default N=%d iters=%d)\n", b.Name(), b.Description(), d.N, d.Iters)
	}
	fmt.Fprintln(out, "\nenvironments:")
	for _, e := range machine.Presets() {
		fmt.Fprintf(out, "  %-11s %s\n", e.Name, e.Description)
	}
	fmt.Fprintln(out, "\nexperiments:")
	for _, e := range experiments.All() {
		fmt.Fprintf(out, "  %-20s %s\n", e.ID, e.Title)
	}
	return nil
}

func cmdRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name (see 'extrap list')")
	n := fs.Int("n", 8, "thread count")
	size := fs.Int("size", 0, "problem size N (0: benchmark default)")
	iters := fs.Int("iters", 0, "iterations (0: benchmark default)")
	mode := fs.String("mode", "actual", "transfer-size attribution: actual|estimate")
	verify := fs.Bool("verify", false, "verify the parallel result against the sequential reference")
	outPath := fs.String("o", "", "output trace file (default <bench>-<n>.xtrp)")
	text := fs.Bool("text", false, "write the text trace format instead of binary")
	overheadUs := fs.Float64("overhead", 0, "instrumentation overhead per event (µs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench == "" {
		return fmt.Errorf("run: -bench is required")
	}
	b, err := benchmarks.ByName(*bench)
	if err != nil {
		return err
	}
	sz := b.DefaultSize()
	if *size > 0 {
		sz.N = *size
	}
	if *iters > 0 {
		sz.Iters = *iters
	}
	sz.Verify = *verify
	opts := core.MeasureOptions{
		SizeMode:      sizeMode(*mode),
		EventOverhead: vtime.FromMicros(*overheadUs),
	}
	tr, err := core.Measure(b.Factory(sz)(*n), opts)
	if err != nil {
		return err
	}
	path := *outPath
	if path == "" {
		path = fmt.Sprintf("%s-%d.xtrp", *bench, *n)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if *text {
		err = trace.WriteText(f, tr)
	} else {
		err = trace.WriteBinary(f, tr)
	}
	if err != nil {
		return err
	}
	s := trace.ComputeStats(tr)
	fmt.Fprintf(out, "wrote %s: %s\n", path, strings.ReplaceAll(s.String(), "\n", "; "))
	return nil
}

func sizeMode(s string) pcxx.SizeMode {
	if s == "estimate" {
		return pcxx.CompilerEstimate
	}
	return pcxx.ActualSize
}

// readTrace loads a trace in any codec — XTRP1 or XTRP2 binary
// (detected by magic), or text — by extension then by sniffing.
func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if filepath.Ext(path) == ".txt" {
		return trace.ReadText(f)
	}
	tr, err := trace.ReadBinaryAny(f)
	if err == trace.ErrBadMagic {
		if _, serr := f.Seek(0, 0); serr != nil {
			return nil, serr
		}
		return trace.ReadText(f)
	}
	return tr, err
}

func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("stats: -i is required")
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("trace fails validation: %w", err)
	}
	fmt.Fprintln(out, trace.ComputeStats(tr))
	return nil
}

func cmdTranslate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("translate", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("translate: -i is required")
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	pt, err := translate.Translate(tr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "threads=%d barriers=%d events=%d\n", pt.NumThreads, pt.Barriers, pt.Events())
	fmt.Fprintf(out, "1-processor (measured) time: %v\n", tr.Duration())
	fmt.Fprintf(out, "ideal %d-processor time:     %v\n", pt.NumThreads, pt.Duration())
	if pt.Duration() > 0 {
		fmt.Fprintf(out, "ideal speedup:               %.2f\n",
			float64(tr.Duration())/float64(pt.Duration()))
	}
	return nil
}

func cmdSimulate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	envName := fs.String("env", "generic-dm", "target environment preset (see 'extrap list')")
	procs := fs.Int("procs", 0, "processor count (0: one per thread)")
	mips := fs.Float64("mips", -1, "override MipsRatio (<0: preset value)")
	startupUs := fs.Float64("startup", -1, "override CommStartupTime in µs (<0: preset)")
	policy := fs.String("policy", "", "override service policy: no-interrupt|interrupt|poll")
	pollUs := fs.Float64("poll-interval", 500, "poll interval in µs (with -policy poll)")
	emit := fs.String("emit-trace", "", "write the extrapolated event trace to this file")
	stream := fs.Bool("stream", false, "bounded-memory pipeline: decode, translate, and simulate the trace as a stream (binary traces only; output is identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("simulate: -i is required")
	}
	env, err := machine.ByName(*envName)
	if err != nil {
		return err
	}
	cfg := env.Config
	cfg.Procs = *procs
	if *mips >= 0 {
		cfg.MipsRatio = *mips
	}
	if *startupUs >= 0 {
		cfg.Comm.StartupTime = vtime.FromMicros(*startupUs)
	}
	switch *policy {
	case "":
	case "no-interrupt":
		cfg.Policy.Kind = sim.NoInterrupt
	case "interrupt":
		cfg.Policy.Kind = sim.Interrupt
	case "poll":
		cfg.Policy.Kind = sim.Poll
		cfg.Policy.PollInterval = vtime.FromMicros(*pollUs)
		if cfg.Policy.PollOverhead == 0 {
			cfg.Policy.PollOverhead = 2 * vtime.Microsecond
		}
	default:
		return fmt.Errorf("simulate: unknown policy %q", *policy)
	}
	cfg.EmitTrace = *emit != ""

	var res *sim.Result
	var ideal vtime.Time
	if *stream {
		// The streaming pipeline pulls events through bounded cursors, so
		// even very large traces extrapolate at buffer-sized memory. It
		// needs the incrementally decodable binary format.
		if filepath.Ext(*in) == ".txt" {
			return fmt.Errorf("simulate: -stream requires the binary trace format")
		}
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		d, err := trace.NewAnyDecoder(bufio.NewReader(f))
		if err != nil {
			return err
		}
		pred, err := core.ExtrapolateReader(context.Background(), d.Header(), d, cfg)
		if err != nil {
			return err
		}
		res, ideal = pred.Result, pred.Ideal
	} else {
		tr, err := readTrace(*in)
		if err != nil {
			return err
		}
		oc, err := core.Extrapolate(tr, cfg)
		if err != nil {
			return err
		}
		res, ideal = oc.Result, oc.Parallel.Duration()
	}
	fmt.Fprintf(out, "environment: %s (%s)\n", env.Name, env.Description)
	fmt.Fprintln(out, res)
	fmt.Fprintf(out, "ideal parallel time: %v   predicted/ideal: %.2f\n",
		ideal, float64(res.TotalTime)/float64(ideal))
	fmt.Fprintln(out, metrics.ComputeBreakdown(res))
	if cfg.EmitTrace {
		f, err := os.Create(*emit)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteBinary(f, res.Trace); err != nil {
			return err
		}
		fmt.Fprintf(out, "extrapolated trace written to %s\n", *emit)
	}
	return nil
}

// cmdProfile analyzes a trace for performance debugging. With -env it
// first extrapolates the measurement to that environment and profiles the
// predicted execution; without it, the trace is translated to the ideal
// parallel timescale and profiled directly.
func cmdProfile(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	in := fs.String("i", "", "input measurement trace file")
	envName := fs.String("env", "", "extrapolate to this environment before profiling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("profile: -i is required")
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	var target *trace.Trace
	if *envName != "" {
		env, err := machine.ByName(*envName)
		if err != nil {
			return err
		}
		cfg := env.Config
		cfg.EmitTrace = true
		oc, err := core.Extrapolate(tr, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "profile of the predicted execution on %q (total %v)\n\n",
			env.Name, oc.Result.TotalTime)
		target = oc.Result.Trace
	} else {
		pt, err := translate.Translate(tr)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "profile of the idealized parallel execution (total %v)\n\n", pt.Duration())
		target = pt.Flatten()
	}
	prof, err := profile.Analyze(target)
	if err != nil {
		return err
	}
	var sb strings.Builder
	prof.Render(&sb)
	fmt.Fprint(out, sb.String())
	return nil
}

// cmdTimeline extrapolates a trace and renders the predicted execution's
// per-thread activity timeline as SVG.
func cmdTimeline(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	in := fs.String("i", "", "input measurement trace file")
	envName := fs.String("env", "generic-dm", "target environment")
	svgPath := fs.String("o", "timeline.svg", "output SVG file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("timeline: -i is required")
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	env, err := machine.ByName(*envName)
	if err != nil {
		return err
	}
	cfg := env.Config
	cfg.EmitTrace = true
	oc, err := core.Extrapolate(tr, cfg)
	if err != nil {
		return err
	}
	tl, err := timeline.Build(oc.Result.Trace)
	if err != nil {
		return err
	}
	f, err := os.Create(*svgPath)
	if err != nil {
		return err
	}
	defer f.Close()
	title := fmt.Sprintf("predicted execution on %s (%v)", env.Name, oc.Result.TotalTime)
	if err := tl.SVG(f, title); err != nil {
		return err
	}
	totals := tl.Totals()
	fmt.Fprintf(out, "wrote %s: compute=%v comm=%v barrier=%v\n",
		*svgPath, totals[timeline.Compute], totals[timeline.Comm], totals[timeline.Barrier])
	return nil
}

// cmdSweep answers "what if" questions: it extrapolates one trace across
// a ladder of values for a single environment parameter.
func cmdSweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	in := fs.String("i", "", "input measurement trace file")
	envName := fs.String("env", "generic-dm", "base environment")
	param := fs.String("param", "startup", "parameter to sweep: startup|bandwidth|mips|service|barrier-model")
	values := fs.String("values", "5,25,100,200", "comma-separated values (µs for times, MB/s for bandwidth, ratio for mips)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("sweep: -i is required")
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	env, err := machine.ByName(*envName)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "what-if sweep of %q on %s\n", *param, env.Name)
	fmt.Fprintf(out, "%-12s  %-14s  %s\n", *param, "predicted", "vs first")
	var base vtime.Time
	for _, vs := range strings.Split(*values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(vs), 64)
		if err != nil {
			return fmt.Errorf("sweep: bad value %q: %w", vs, err)
		}
		cfg := env.Config
		switch *param {
		case "startup":
			cfg.Comm.StartupTime = vtime.FromMicros(v)
		case "bandwidth":
			if v <= 0 {
				return fmt.Errorf("sweep: bandwidth must be positive")
			}
			cfg.Comm.ByteTransferTime = vtime.FromMicros(1 / v) // MB/s → µs/B
		case "mips":
			cfg.MipsRatio = v
		case "service":
			cfg.Policy.ServiceTime = vtime.FromMicros(v)
		case "barrier-model":
			cfg.Barrier.ModelTime = vtime.FromMicros(v)
		default:
			return fmt.Errorf("sweep: unknown parameter %q", *param)
		}
		oc, err := core.Extrapolate(tr, cfg)
		if err != nil {
			return err
		}
		if base == 0 {
			base = oc.Result.TotalTime
		}
		fmt.Fprintf(out, "%-12s  %-14v  %.2f×\n", vs,
			oc.Result.TotalTime, float64(oc.Result.TotalTime)/float64(base))
	}
	return nil
}

// cmdExport converts a trace: SDDF interop output, or the paper's
// per-thread translated trace files.
func cmdExport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	format := fs.String("format", "sddf", "output format: sddf|text|binary")
	outPath := fs.String("o", "", "output file (default derived from input)")
	split := fs.String("split", "", "also write translated per-thread traces into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("export: -i is required")
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	path := *outPath
	if path == "" {
		ext := map[string]string{"sddf": ".sddf", "text": ".txt", "binary": ".xtrp"}[*format]
		if ext == "" {
			return fmt.Errorf("export: unknown format %q", *format)
		}
		path = strings.TrimSuffix(*in, filepath.Ext(*in)) + ext
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch *format {
	case "sddf":
		err = trace.WriteSDDF(f, tr)
	case "text":
		err = trace.WriteText(f, tr)
	case "binary":
		err = trace.WriteBinary(f, tr)
	default:
		return fmt.Errorf("export: unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%s)\n", path, *format)
	if *split != "" {
		pt, err := translate.Translate(tr)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*split, 0o755); err != nil {
			return err
		}
		for i := 0; i < pt.NumThreads; i++ {
			tp := filepath.Join(*split, fmt.Sprintf("thread-%03d.xtrp", i))
			tf, err := os.Create(tp)
			if err != nil {
				return err
			}
			if err := trace.WriteBinary(tf, pt.ThreadTrace(i)); err != nil {
				tf.Close()
				return err
			}
			if err := tf.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "wrote %d per-thread translated traces into %s\n", pt.NumThreads, *split)
	}
	return nil
}

// cmdCalibrate runs the paper's MFLOPS microbenchmark against the real
// host and reports how to scale to/from the modeled machines.
func cmdCalibrate(out io.Writer) error {
	host := pcxx.CalibrateHost()
	hostMF := machine.MeasureMFLOPS(host)
	sun := machine.MeasureMFLOPS(pcxx.Sun4())
	cm5 := machine.MeasureMFLOPS(pcxx.CM5Node())
	fmt.Fprintf(out, "this machine:        %.1f MFLOPS (%v per flop)\n", hostMF, host.FlopTime)
	fmt.Fprintf(out, "modeled Sun 4:       %.4f MFLOPS\n", sun)
	fmt.Fprintf(out, "modeled CM-5 node:   %.4f MFLOPS\n", cm5)
	fmt.Fprintf(out, "MipsRatio host→sun4: %.4f\n", machine.DeriveMipsRatio(host, pcxx.Sun4()))
	fmt.Fprintf(out, "MipsRatio host→cm5:  %.4f\n", machine.DeriveMipsRatio(host, pcxx.CM5Node()))
	fmt.Fprintln(out, "use these ratios as -mips when extrapolating traces whose compute")
	fmt.Fprintln(out, "costs were charged with the calibrated host model")
	return nil
}

// parseExperimentFlags turns the experiment subcommand's arguments into
// the engine Options plus output destinations. Split from cmdExperiment
// (and parsed with ContinueOnError) so flag plumbing is testable without
// the flag package exiting the process.
func parseExperimentFlags(args []string) (opts experiments.Options, id, workloadPath, csvDir, svgDir, storeDir string, err error) {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "small problem sizes and a short processor ladder")
	workers := fs.Int("workers", 0, "worker goroutines for the measurement/simulation grid (0 = all CPUs, 1 = sequential; output is identical at any value)")
	batch := fs.Int("batch", 0, "batched grid simulation: advance up to this many machine models per pass over a shared measured trace (≤ 1 = per-cell; output is identical at any value)")
	csv := fs.String("csv", "", "also write each table as CSV into this directory")
	svg := fs.String("svg", "", "also write each figure as SVG into this directory")
	storeFlag := fs.String("store", "", "durable artifact store directory: measurements persist there and repeated runs reuse them instead of re-measuring (empty = in-memory only)")
	formatFlag := fs.String("trace-format", "", "run over an encoded trace cache in this wire format (xtrp1|xtrp2); output is byte-identical to the default in-memory run (empty = in-memory)")
	modeFlag := fs.String("mode", "", "grid mode: exact (default — simulate every ladder cell) or fitted (simulate sparse anchors, answer the rest from an analytic least-squares fit)")
	replayFlag := fs.String("replay", "", "XTRP2 replay mode: pattern (default — compiled pattern programs with steady-state fast-forward) or event (flat event-by-event); output is byte-identical either way")
	workloadFlag := fs.String("workload", "", "sweep a composed workload (JSON pattern spec file) over the modeled machines instead of running a registered experiment")
	if err = fs.Parse(args); err != nil {
		return opts, "", "", "", "", "", err
	}
	if *workers < 0 {
		return opts, "", "", "", "", "", fmt.Errorf("experiment: -workers must be ≥ 0 (0 = all CPUs), got %d", *workers)
	}
	switch {
	case *workloadFlag == "" && fs.NArg() != 1:
		return opts, "", "", "", "", "", fmt.Errorf("experiment: exactly one experiment id (or \"all\") required")
	case *workloadFlag != "" && fs.NArg() != 0:
		return opts, "", "", "", "", "", fmt.Errorf("experiment: -workload replaces the experiment id; drop %q", fs.Arg(0))
	}
	var tf trace.Format
	if *formatFlag != "" {
		if tf, err = trace.ParseFormat(*formatFlag); err != nil {
			return opts, "", "", "", "", "", fmt.Errorf("experiment: %w", err)
		}
	}
	mode := *modeFlag
	switch mode {
	case "", "exact":
		mode = ""
	case "fitted":
	default:
		return opts, "", "", "", "", "", fmt.Errorf("experiment: -mode must be \"exact\" or \"fitted\", got %q", mode)
	}
	var replay sim.ReplayMode
	if *replayFlag != "" {
		if replay, err = sim.ParseReplayMode(*replayFlag); err != nil {
			return opts, "", "", "", "", "", fmt.Errorf("experiment: %w", err)
		}
	}
	return experiments.Options{Quick: *quick, Workers: *workers, BatchSize: *batch, TraceFormat: tf, FitMode: mode, Replay: replay}, fs.Arg(0), *workloadFlag, *csv, *svg, *storeFlag, nil
}

func cmdExperiment(args []string, w io.Writer) error {
	opts, id, workloadPath, csvDir, svgDir, storeDir, err := parseExperimentFlags(args)
	if err != nil {
		return err
	}
	if storeDir != "" {
		st, err := store.Open(storeDir, 0)
		if err != nil {
			return err
		}
		defer st.Close()
		opts.Backend = st
	}
	if workloadPath != "" {
		return runWorkloadSweep(opts, workloadPath, w)
	}
	var exps []experiments.Experiment
	if id == "all" {
		exps = experiments.All()
	} else {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		exps = []experiments.Experiment{e}
	}
	for _, e := range exps {
		out, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		out.Render(w)
		if csvDir != "" {
			if err := writeCSVs(csvDir, out); err != nil {
				return err
			}
		}
		if svgDir != "" {
			if err := writeSVGs(svgDir, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// workloadMachines and workloadLadder fix the sweep grid for
// `extrap experiment -workload`: the machine set and processor ladder
// are not flags, so the printed table is a pure function of the spec
// file — CI diffs the output across -workers, -batch, and -trace-format
// knobs to prove the synthesis pipeline deterministic.
var workloadMachines = []string{"cm5", "generic-dm", "shared-mem"}

func workloadLadder(quick bool) []int {
	if quick {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

// runWorkloadSweep parses a composed-workload spec file, synthesizes its
// pcxx program, and sweeps it over the fixed machine set and ladder,
// printing one exact integer-nanosecond cell per (procs, machine). The
// table is byte-identical at any worker count, batch size, or trace
// format — the same invariant the registered experiments carry.
func runWorkloadSweep(opts experiments.Options, path string, w io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	wl, err := compose.FromJSON(raw)
	if err != nil {
		return fmt.Errorf("experiment: workload %s: %w", path, err)
	}

	var svc *experiments.Service
	if opts.TraceFormat != 0 {
		svc = experiments.NewStreamingService(opts.Workers, 64, 0)
		svc.SetTraceFormat(opts.TraceFormat)
	} else {
		svc = experiments.NewService(opts.Workers, 64)
	}
	svc.SetBatchSize(opts.BatchSize)
	svc.SetReplay(opts.Replay)
	if opts.Backend != nil {
		svc.SetBackend(opts.Backend)
	}

	sz := wl.DefaultSize()
	ladder := workloadLadder(opts.Quick)
	jobs := make([]experiments.SweepJob, len(workloadMachines))
	for i, name := range workloadMachines {
		env, err := machine.ByName(name)
		if err != nil {
			return err
		}
		jobs[i] = experiments.SweepJob{
			Name:    wl.Name(),
			Size:    sz,
			Factory: wl.Factory(sz),
			Mode:    pcxx.ActualSize,
			Cfg:     env.Config,
			Procs:   ladder,
		}
	}
	var curves [][]metrics.Point
	if opts.FitMode == "fitted" {
		curves, err = svc.SweepGridFitted(context.Background(), jobs)
	} else {
		curves, err = svc.SweepGrid(context.Background(), jobs)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "workload  %s\n", wl.Name())
	fmt.Fprintf(w, "canonical %s\n", wl.Canonical())
	fmt.Fprintf(w, "nodes %d  depth %d  size %d  iters %d\n\n", wl.Nodes(), wl.Depth(), sz.N, sz.Iters)
	fmt.Fprintf(w, "%6s", "procs")
	for _, name := range workloadMachines {
		fmt.Fprintf(w, "  %16s", name)
	}
	fmt.Fprintln(w)
	for pi := range ladder {
		fmt.Fprintf(w, "%6d", curves[0][pi].Procs)
		for mi := range workloadMachines {
			fmt.Fprintf(w, "  %16d", int64(curves[mi][pi].Time))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// writeSVGs renders each figure of an experiment as an SVG file.
func writeSVGs(dir string, out *experiments.Output) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range out.Figures {
		path := filepath.Join(dir, fmt.Sprintf("%s-fig%d.svg", out.ID, i+1))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := out.Figures[i].SVG(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func writeCSVs(dir string, out *experiments.Output) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range out.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s-table%d.csv", out.ID, i+1))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		out.Tables[i].CSV(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	for i := range out.Figures {
		t := out.Figures[i].Table()
		path := filepath.Join(dir, fmt.Sprintf("%s-fig%d.csv", out.ID, i+1))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		t.CSV(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
