package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseExperimentFlags: CLI flags must land in the engine Options
// verbatim, with the id and output dirs split out.
func TestParseExperimentFlags(t *testing.T) {
	opts, id, _, csvDir, svgDir, storeDir, err := parseExperimentFlags(
		[]string{"-quick", "-workers", "3", "-csv", "/tmp/c", "-svg", "/tmp/s", "-store", "/tmp/st", "fig4"})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Quick || opts.Workers != 3 {
		t.Errorf("Options = %+v, want Quick=true Workers=3", opts)
	}
	if id != "fig4" || csvDir != "/tmp/c" || svgDir != "/tmp/s" || storeDir != "/tmp/st" {
		t.Errorf("id=%q csv=%q svg=%q store=%q", id, csvDir, svgDir, storeDir)
	}

	opts, id, _, _, _, storeDir, err = parseExperimentFlags([]string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Quick || opts.Workers != 0 || id != "all" || storeDir != "" {
		t.Errorf("defaults: opts=%+v id=%q store=%q", opts, id, storeDir)
	}
}

// TestExperimentBadWorkers: nonsense -workers values are rejected before
// any experiment runs.
func TestExperimentBadWorkers(t *testing.T) {
	var buf bytes.Buffer
	err := dispatch("experiment", []string{"-workers", "-3", "fig4"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-workers") {
		t.Errorf("negative -workers: err = %v", err)
	}
	if err := dispatch("experiment", []string{"-workers", "abc", "fig4"}, &buf); err == nil {
		t.Error("non-numeric -workers accepted")
	}
	if err := dispatch("experiment", []string{"-workers", "2"}, &buf); err == nil {
		t.Error("missing experiment id accepted")
	}
}

// TestServeFlagValidation: serve's flag plumbing rejects unusable
// configurations without binding a socket.
func TestServeFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		name string
		args []string
	}{
		{"zero max-inflight", []string{"-max-inflight", "0", "-addr", "127.0.0.1:0"}},
		{"negative workers", []string{"-workers", "-1", "-addr", "127.0.0.1:0"}},
		{"zero timeout", []string{"-timeout", "0s", "-addr", "127.0.0.1:0"}},
		{"non-numeric max-inflight", []string{"-max-inflight", "abc"}},
		{"unparseable port", []string{"-addr", "127.0.0.1:99999999"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := dispatch("serve", tc.args, &buf); err == nil {
				t.Errorf("serve %v accepted", tc.args)
			}
		})
	}
}
