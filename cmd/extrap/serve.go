package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"extrap/internal/serve"
)

// cmdServe runs the extrapolation service: a JSON-over-HTTP API backed
// by the shared experiment engine. It blocks until SIGINT/SIGTERM, then
// drains in-flight requests and exits.
func cmdServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	maxInflight := fs.Int("max-inflight", 32, "maximum concurrently executing compute requests")
	queueWait := fs.Duration("queue-wait", 500*time.Millisecond, "how long an excess request may wait for a slot before a 429 (0 rejects immediately)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request pipeline deadline")
	workers := fs.Int("workers", 0, "worker goroutines per sweep request (0 = all CPUs)")
	cacheEntries := fs.Int("cache-entries", 256, "measurement memo-cache bound (LRU-evicted past it)")
	maxTraceBytes := fs.Int64("max-trace-bytes", 256<<20, "per-measurement encoded-trace budget in bytes; requests past it get 413 (-1 = unlimited)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxInflight < 1 {
		return fmt.Errorf("serve: -max-inflight must be ≥ 1, got %d", *maxInflight)
	}
	if *workers < 0 {
		return fmt.Errorf("serve: -workers must be ≥ 0 (0 = all CPUs), got %d", *workers)
	}
	if *timeout <= 0 {
		return fmt.Errorf("serve: -timeout must be positive, got %v", *timeout)
	}
	if *cacheEntries < 1 {
		return fmt.Errorf("serve: -cache-entries must be ≥ 1, got %d", *cacheEntries)
	}
	if *maxTraceBytes == 0 {
		return fmt.Errorf("serve: -max-trace-bytes must be positive (or -1 for unlimited), got 0")
	}

	srv := serve.New(serve.Config{
		MaxInFlight:    *maxInflight,
		QueueWait:      *queueWait,
		RequestTimeout: *timeout,
		Workers:        *workers,
		CacheEntries:   *cacheEntries,
		MaxTraceBytes:  *maxTraceBytes,
		EnablePprof:    *pprofFlag,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(out, "extrap serve listening on http://%s (max-inflight=%d timeout=%v)\n",
		ln.Addr(), *maxInflight, *timeout)
	return srv.Serve(ctx, ln)
}
