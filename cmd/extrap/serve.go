package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"extrap/internal/serve"
	"extrap/internal/sim"
	"extrap/internal/trace"
)

// cmdServe runs the extrapolation service: a JSON-over-HTTP API backed
// by the shared experiment engine. It blocks until SIGINT/SIGTERM, then
// drains in-flight requests and exits.
func cmdServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	maxInflight := fs.Int("max-inflight", 32, "maximum concurrently executing compute requests")
	queueWait := fs.Duration("queue-wait", 500*time.Millisecond, "how long an excess request may wait for a slot before a 429 (0 rejects immediately)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request pipeline deadline")
	workers := fs.Int("workers", 0, "worker goroutines per sweep request (0 = all CPUs)")
	batch := fs.Int("batch", 0, "batched sweep simulation: advance up to this many machine models per pass over a shared trace (multi-machine sweeps/jobs; ≤ 1 = per-cell; responses are byte-identical at any value)")
	cacheEntries := fs.Int("cache-entries", 256, "measurement memo-cache bound (LRU-evicted past it)")
	maxTraceBytes := fs.Int64("max-trace-bytes", 256<<20, "per-measurement encoded-trace budget in bytes; requests past it get 413 (-1 = unlimited)")
	storeDir := fs.String("store-dir", "", "durable artifact store directory; enables on-disk trace/prediction reuse and the async jobs API (empty = in-memory only)")
	storeBytes := fs.Int64("store-bytes", 0, "artifact store on-disk budget in bytes, LRU-evicted past it (0 = unlimited)")
	jobWorkers := fs.Int("jobs-workers", 1, "concurrently executing async jobs (requires -store-dir)")
	traceFormat := fs.String("trace-format", "xtrp2", "wire format for cached measurement traces: xtrp2 (loop-compacted) or xtrp1 (flat records); predictions are byte-identical either way")
	replayFlag := fs.String("replay", "pattern", "XTRP2 replay mode: pattern (compiled pattern programs with steady-state fast-forward) or event (flat event-by-event); responses are byte-identical either way")
	role := fs.String("role", "solo", "cluster role: solo (default), coordinator (shard sweeps across -peers), or worker (accept shards on internal endpoints)")
	peers := fs.String("peers", "", "comma-separated peer base URLs; for a coordinator the worker replicas (required, ≥ 1), for a worker optionally one peer to read measurement artifacts through")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxInflight < 1 {
		return fmt.Errorf("serve: -max-inflight must be ≥ 1, got %d", *maxInflight)
	}
	if *workers < 0 {
		return fmt.Errorf("serve: -workers must be ≥ 0 (0 = all CPUs), got %d", *workers)
	}
	if *timeout <= 0 {
		return fmt.Errorf("serve: -timeout must be positive, got %v", *timeout)
	}
	if *cacheEntries < 1 {
		return fmt.Errorf("serve: -cache-entries must be ≥ 1, got %d", *cacheEntries)
	}
	if *maxTraceBytes == 0 {
		return fmt.Errorf("serve: -max-trace-bytes must be positive (or -1 for unlimited), got 0")
	}
	if *storeBytes < 0 {
		return fmt.Errorf("serve: -store-bytes must be ≥ 0 (0 = unlimited), got %d", *storeBytes)
	}
	if *jobWorkers < 1 {
		return fmt.Errorf("serve: -jobs-workers must be ≥ 1, got %d", *jobWorkers)
	}
	tf, err := trace.ParseFormat(*traceFormat)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	replay, err := sim.ParseReplayMode(*replayFlag)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		u, err := url.Parse(p)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("serve: -peers entry %q is not an http(s) base URL", p)
		}
		peerList = append(peerList, strings.TrimRight(p, "/"))
	}

	srv, err := serve.New(serve.Config{
		MaxInFlight:    *maxInflight,
		QueueWait:      *queueWait,
		RequestTimeout: *timeout,
		Workers:        *workers,
		BatchSize:      *batch,
		CacheEntries:   *cacheEntries,
		MaxTraceBytes:  *maxTraceBytes,
		StoreDir:       *storeDir,
		StoreBytes:     *storeBytes,
		JobWorkers:     *jobWorkers,
		TraceFormat:    tf,
		Replay:         replay,
		Role:           *role,
		Peers:          peerList,
		EnablePprof:    *pprofFlag,
	})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(out, "extrap serve listening on http://%s (max-inflight=%d timeout=%v)\n",
		ln.Addr(), *maxInflight, *timeout)
	return srv.Serve(ctx, ln)
}
