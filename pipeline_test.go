package extrap

// Integration tests spanning the whole pipeline: measurement → codec →
// translation → simulation → metrics, with cross-stage consistency
// invariants and failure injection.

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"extrap/internal/benchmarks"
	"extrap/internal/core"
	"extrap/internal/machine"
	"extrap/internal/metrics"
	"extrap/internal/pcxx"
	"extrap/internal/sim"
	"extrap/internal/trace"
	"extrap/internal/translate"
	"extrap/internal/vtime"
)

// measureBench produces a small trace of the named benchmark.
func measureBench(t *testing.T, name string, threads int) *Trace {
	t.Helper()
	b, err := benchmarks.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	size := benchmarks.Size{N: 16, Iters: 8}
	if name == "sort" {
		size = benchmarks.Size{N: 256}
	}
	if name == "embar" {
		size = benchmarks.Size{N: 9}
	}
	tr, err := core.Measure(b.Factory(size)(threads), core.MeasureOptions{SizeMode: pcxx.ActualSize})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTraceMetricsConsistency: metrics recomputed from the emitted
// extrapolated trace must agree with the simulator's own accounting —
// the paper's pipeline derives PM₂ᵖ from PI₂ᵖ, so the two views of the
// same run have to coincide.
func TestTraceMetricsConsistency(t *testing.T) {
	for _, name := range []string{"grid", "cyclic", "sort"} {
		tr := measureBench(t, name, 4)
		cfg := machine.GenericDM().Config
		cfg.EmitTrace = true
		out, err := core.Extrapolate(tr, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Result.Trace == nil {
			t.Fatalf("%s: no extrapolated trace", name)
		}
		tm, err := metrics.FromTrace(out.Result.Trace)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tm.Barriers != int64(out.Result.Barriers) {
			t.Errorf("%s: trace barriers %d != result barriers %d", name, tm.Barriers, out.Result.Barriers)
		}
		// The trace's latest event is at or before the simulated end, and
		// within the final thread-end events it matches exactly.
		if tm.TotalTime > out.Result.TotalTime {
			t.Errorf("%s: trace time %v exceeds result %v", name, tm.TotalTime, out.Result.TotalTime)
		}
		if tm.TotalTime != out.Result.TotalTime {
			t.Errorf("%s: trace time %v != result time %v", name, tm.TotalTime, out.Result.TotalTime)
		}
		// Per-thread barrier wait sums match the simulator's accounting.
		var statWait vtime.Time
		for _, s := range out.Result.Threads {
			statWait += s.BarrierWait
		}
		if tm.BarrierWait != statWait {
			t.Errorf("%s: trace barrier wait %v != stats %v", name, tm.BarrierWait, statWait)
		}
	}
}

// TestCodecPreservesExtrapolation: a trace that has been written to disk
// and read back must extrapolate to the identical prediction.
func TestCodecPreservesExtrapolation(t *testing.T) {
	tr := measureBench(t, "mgrid", 4)
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.CM5().Config
	a, err := core.Extrapolate(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Extrapolate(tr2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.TotalTime != b.Result.TotalTime {
		t.Fatalf("prediction changed across codec round trip: %v vs %v",
			a.Result.TotalTime, b.Result.TotalTime)
	}
}

// TestPredictionNeverBelowIdeal: for every benchmark and environment, the
// predicted time is bounded below by the translated ideal time scaled by
// MipsRatio — the simulator only ever adds costs.
func TestPredictionNeverBelowIdeal(t *testing.T) {
	envs := machine.Presets()
	for _, name := range []string{"embar", "cyclic", "grid", "sort", "poisson"} {
		tr := measureBench(t, name, 4)
		pt, err := translate.Translate(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, env := range envs {
			out, err := core.Extrapolate(tr, env.Config)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, env.Name, err)
			}
			floor := pt.Duration().Scale(env.Config.MipsRatio)
			if out.Result.TotalTime < floor {
				t.Errorf("%s/%s: predicted %v below scaled ideal %v",
					name, env.Name, out.Result.TotalTime, floor)
			}
		}
	}
}

// TestMonotoneInCostParameters: raising a single cost parameter must not
// speed up the prediction (weak monotonicity over a parameter ladder).
func TestMonotoneInCostParameters(t *testing.T) {
	tr := measureBench(t, "cyclic", 8)
	base := machine.GenericDM().Config
	mutations := map[string]func(*sim.Config, vtime.Time){
		"startup":      func(c *sim.Config, v vtime.Time) { c.Comm.StartupTime = v },
		"byteTransfer": func(c *sim.Config, v vtime.Time) { c.Comm.ByteTransferTime = v / 100 },
		"service":      func(c *sim.Config, v vtime.Time) { c.Policy.ServiceTime = v },
		"barrierEntry": func(c *sim.Config, v vtime.Time) { c.Barrier.EntryTime = v },
		"modelTime":    func(c *sim.Config, v vtime.Time) { c.Barrier.ModelTime = v },
		"recv":         func(c *sim.Config, v vtime.Time) { c.Comm.RecvOverhead = v },
	}
	for name, mutate := range mutations {
		var prev vtime.Time
		for i, v := range []vtime.Time{0, 20 * vtime.Microsecond, 200 * vtime.Microsecond} {
			cfg := base
			mutate(&cfg, v)
			out, err := core.Extrapolate(tr, cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if i > 0 && out.Result.TotalTime < prev {
				t.Errorf("%s: raising the parameter sped up the run: %v → %v",
					name, prev, out.Result.TotalTime)
			}
			prev = out.Result.TotalTime
		}
	}
}

// TestMipsRatioPropertyOnComputeBound: for a pure-compute program the
// predicted time scales linearly with MipsRatio under a free environment.
func TestMipsRatioPropertyOnComputeBound(t *testing.T) {
	prog := core.Program{
		Name:    "pure-compute",
		Threads: 2,
		Setup: func(rt *pcxx.Runtime) func(*pcxx.Thread) {
			return func(th *pcxx.Thread) {
				th.Compute(1 * vtime.Millisecond)
				th.Barrier()
			}
		},
	}
	tr, err := core.Measure(prog, core.MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(r uint8) bool {
		ratio := float64(r%64)/8 + 0.125
		cfg := machine.Ideal().Config
		cfg.MipsRatio = ratio
		out, err := core.Extrapolate(tr, cfg)
		if err != nil {
			return false
		}
		return out.Result.TotalTime == (1 * vtime.Millisecond).Scale(ratio)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFailureInjectionCorruptTraces: corrupted traces must be rejected at
// translation, never crash the simulator.
func TestFailureInjectionCorruptTraces(t *testing.T) {
	tr := measureBench(t, "grid", 4)
	corruptions := map[string]func(*trace.Trace){
		"drop barrier exit": func(c *trace.Trace) {
			for i, e := range c.Events {
				if e.Kind == trace.KindBarrierExit {
					c.Events = append(c.Events[:i], c.Events[i+1:]...)
					return
				}
			}
		},
		"scramble thread id": func(c *trace.Trace) {
			c.Events[len(c.Events)/2].Thread = 99
		},
		"negative size": func(c *trace.Trace) {
			for i, e := range c.Events {
				if e.Kind == trace.KindRemoteRead {
					c.Events[i].Arg1 = -1
					return
				}
			}
		},
		"time reversal": func(c *trace.Trace) {
			c.Events[len(c.Events)-1].Time = 0
		},
	}
	for name, corrupt := range corruptions {
		c := tr.Clone()
		corrupt(c)
		if _, err := core.Extrapolate(c, machine.GenericDM().Config); err == nil {
			t.Errorf("%s: corrupted trace accepted", name)
		}
	}
}

// TestExtrapolationIsDeterministicEverywhere: the full pipeline produces
// byte-identical predictions across repeated runs for every benchmark.
func TestExtrapolationIsDeterministicEverywhere(t *testing.T) {
	for _, b := range benchmarks.All() {
		name := b.Name()
		run := func() vtime.Time {
			tr := measureBench(t, name, 4)
			out, err := core.Extrapolate(tr, machine.GenericDM().Config)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return out.Result.TotalTime
		}
		if name == "matmul" || name == "sparse" || name == "mgrid" || name == "poisson" {
			continue // covered by the benchmark package's determinism test
		}
		if a, b2 := run(), run(); a != b2 {
			t.Errorf("%s: predictions differ across runs: %v vs %v", name, a, b2)
		}
	}
}

// TestSimulatorDeterminismUnderRandomConfigs: arbitrary (valid) parameter
// combinations must give identical results across repeated simulations.
func TestSimulatorDeterminismUnderRandomConfigs(t *testing.T) {
	tr := measureBench(t, "cyclic", 8)
	f := func(su, btt uint16, pol uint8, cf uint8) bool {
		cfg := machine.GenericDM().Config
		cfg.Comm.StartupTime = vtime.Time(su) * vtime.Microsecond / 4
		cfg.Comm.ByteTransferTime = vtime.Time(btt) % 500
		cfg.Comm.ContentionFactor = float64(cf) / 512
		switch pol % 3 {
		case 0:
			cfg.Policy = sim.Policy{Kind: sim.NoInterrupt, ServiceTime: 5 * vtime.Microsecond}
		case 1:
			cfg.Policy = sim.Policy{Kind: sim.Interrupt,
				InterruptOverhead: 5 * vtime.Microsecond, ServiceTime: 5 * vtime.Microsecond}
		default:
			cfg.Policy = sim.Policy{Kind: sim.Poll,
				PollInterval: 100 * vtime.Microsecond, PollOverhead: vtime.Microsecond,
				ServiceTime: 5 * vtime.Microsecond}
		}
		a, err := core.Extrapolate(tr, cfg)
		if err != nil {
			return false
		}
		b, err := core.Extrapolate(tr, cfg)
		if err != nil {
			return false
		}
		return a.Result.TotalTime == b.Result.TotalTime &&
			a.Result.Net == b.Result.Net
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSortRejectsNonPowerOfTwoThreads: the bitonic network's requirement
// surfaces as a clean measurement error, not a hang or wrong answer.
func TestSortRejectsNonPowerOfTwoThreads(t *testing.T) {
	b, err := benchmarks.ByName("sort")
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Measure(b.Factory(benchmarks.Size{N: 64})(3), core.MeasureOptions{})
	if err == nil {
		t.Fatal("sort accepted 3 threads")
	}
	if !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
